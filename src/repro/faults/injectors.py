"""Fault injectors: outages, flow churn, and packet-level faults.

Each injector composes with the existing engine/link/switch stack — it
schedules ordinary events on the shared :class:`Simulator` and drives
public APIs (``Link.pause/resume``, ``Scheduler.add_flow/remove_flow``,
an ingress callable). All randomness is drawn from named
:class:`repro.simulation.random.RandomStreams` streams, so a faulted run
remains a pure function of its seed and fault configuration: two runs
with the same seed and schedule produce byte-identical traces.

* :class:`LinkOutage` — the link goes dark and comes back, on a
  deterministic ``[(down, up), ...]`` schedule or a seeded renewal
  process (exponential time-to-failure / time-to-repair);
* :class:`FlowChurn` — a pool of flows joins and leaves mid-run,
  exercising ``add_flow``/``remove_flow`` and SFQ's virtual-time
  restart rule (a re-joining flow's tag chain restarts at the current
  ``v(t)``, Section 2);
* :class:`PacketFaults` — seeded loss, header corruption (misrouting)
  and reordering applied at an ingress point, upstream of a switch or
  link;
* :class:`ServerStall` — short scheduler freezes: the link stops
  *dispatching* for a moment (the in-flight transmission finishes, no
  new one starts), the paper's fluctuation-constrained server in its
  bursty extreme;
* :class:`WeightReconfig` — mid-run flow re-weighting through
  ``Scheduler.set_weight``, the event Theorem 1's constant-rate
  assumption is most sensitive to.

Composition
-----------
Injectors that take the link down (:class:`LinkOutage`,
:class:`ServerStall`) each own their *own* hold on the link's counted
pause depth (see :meth:`repro.servers.link.Link.pause`): an injector
pauses when its window opens and releases exactly the hold it took when
the window closes, regardless of what any other injector did in
between. Overlapping windows from different injectors therefore neither
double-pause nor resume underneath each other, and the in-flight packet
survives until the last hold is released.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.packet import Packet
from repro.servers.link import Link
from repro.simulation.engine import Simulator
from repro.simulation.random import RandomStreams
from repro.traffic.base import Ingress, Source

__all__ = [
    "LinkOutage",
    "FlowChurn",
    "PacketFaults",
    "ServerStall",
    "WeightReconfig",
]

#: Builds the traffic source for a churn flow: (flow_id, start, stop) ->
#: an *unstarted* Source feeding the churned link.
SourceFactory = Callable[[Hashable, float, float], Source]


class LinkOutage:
    """Drives a link through down/up cycles.

    Parameters
    ----------
    schedule:
        Deterministic mode: a sequence of ``(down_time, up_time)``
        pairs, strictly increasing and non-overlapping.
    streams, mean_time_to_failure, mean_outage:
        Seeded mode: failures arrive as a renewal process — after each
        recovery the next failure is ``Exp(mean_time_to_failure)`` away
        and lasts ``Exp(mean_outage)``. Draws come from the stream
        ``"outage:<link name>"`` so adding an outage never perturbs any
        other random stream.
    recovery:
        ``"replay"`` retransmits the interrupted packet on recovery;
        ``"drop"`` discards it (see :meth:`repro.servers.link.Link.resume`).
    max_outages, stop_time:
        Bounds for the seeded mode (either may be ``None``).

    Call :meth:`start` to arm the injector.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        schedule: Optional[Sequence[Tuple[float, float]]] = None,
        *,
        streams: Optional[RandomStreams] = None,
        mean_time_to_failure: Optional[float] = None,
        mean_outage: Optional[float] = None,
        recovery: str = "replay",
        max_outages: Optional[int] = None,
        stop_time: Optional[float] = None,
    ) -> None:
        if recovery not in ("replay", "drop"):
            raise ValueError(
                f"recovery must be 'replay' or 'drop', got {recovery!r}"
            )
        seeded = streams is not None
        if seeded == (schedule is not None):
            raise ValueError(
                "provide exactly one of schedule= (deterministic) or "
                "streams= (seeded renewal process)"
            )
        if seeded and (mean_time_to_failure is None or mean_outage is None):
            raise ValueError(
                "seeded mode needs mean_time_to_failure and mean_outage"
            )
        if schedule is not None:
            last_up = float("-inf")
            for down, up in schedule:
                if not (last_up < down < up):
                    raise ValueError(
                        f"outage [{down}, {up}] overlaps or is inverted"
                    )
                last_up = up
        self.sim = sim
        self.link = link
        self.schedule = list(schedule) if schedule is not None else None
        self.recovery = recovery
        self.max_outages = max_outages
        self.stop_time = stop_time
        self.mean_time_to_failure = mean_time_to_failure
        self.mean_outage = mean_outage
        self._rng = streams.stream(f"outage:{link.name}") if seeded else None
        self._started = False
        #: True while this injector owns a hold on the link (between its
        #: own _down and _up) — composition-safe, unlike ``link.paused``
        #: which any other injector may also be driving.
        self._holding = False
        self.outages = 0
        self.downtime = 0.0
        self._down_since: Optional[float] = None

    def start(self) -> None:
        """Arm the injector (schedules the first failure)."""
        if self._started:
            return
        self._started = True
        if self.schedule is not None:
            for down, up in self.schedule:
                self.sim.at(down, self._down)
                self.sim.at(up, self._up)
        else:
            self._schedule_failure()

    # ------------------------------------------------------------------
    def _schedule_failure(self) -> None:
        if self.max_outages is not None and self.outages >= self.max_outages:
            return
        assert self._rng is not None
        assert self.mean_time_to_failure is not None
        delay = self._rng.expovariate(1.0 / self.mean_time_to_failure)
        when = self.sim.now + delay
        if self.stop_time is not None and when >= self.stop_time:
            return
        self.sim.at(when, self._down)

    def _down(self) -> None:
        if self._holding:
            return
        self._holding = True
        self.outages += 1
        self._down_since = self.sim.now
        self.link.pause()
        if self._rng is not None:
            assert self.mean_outage is not None
            self.sim.after(
                self._rng.expovariate(1.0 / self.mean_outage), self._up
            )

    def _up(self) -> None:
        if not self._holding:
            return
        self._holding = False
        if self._down_since is not None:
            self.downtime += self.sim.now - self._down_since
            self._down_since = None
        self.link.resume(self.recovery)
        if self._rng is not None:
            self._schedule_failure()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkOutage({self.link.name}, outages={self.outages}, "
            f"downtime={self.downtime:.9g}s)"
        )


class FlowChurn:
    """A pool of flows joining and leaving a link mid-run.

    Each churn flow alternates off/on: after an ``Exp(mean_off)`` idle
    period it *joins* — registered with the link's scheduler at
    ``weight`` and driven by a traffic source built via
    ``make_source(flow_id, start, stop)`` — stays for ``Exp(mean_on)``,
    then *leaves*: its source stops, and once its last queued packet has
    drained the flow is removed from the scheduler (``remove_flow``
    rejects backlogged flows, so removal waits for the drain). A
    subsequent join re-registers the flow from scratch, which is exactly
    the path that exercises SFQ's virtual-time restart rule: the fresh
    tag chain starts at the *current* ``v(t)``, not at the flow's stale
    finish tag.

    Per-flow draws come from streams named ``"churn:<name>:<flow>"``, so
    churn timing is independent of everything else in the run.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        make_source: SourceFactory,
        *,
        streams: RandomStreams,
        flow_ids: Sequence[Hashable],
        mean_on: float,
        mean_off: float,
        weight: float = 1.0,
        stop_time: Optional[float] = None,
        name: str = "churn",
    ) -> None:
        if mean_on <= 0 or mean_off <= 0:
            raise ValueError("mean_on and mean_off must be positive")
        self.sim = sim
        self.link = link
        self.make_source = make_source
        self.flow_ids = list(flow_ids)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self.weight = float(weight)
        self.stop_time = stop_time
        self.name = name
        self._rngs = {
            fid: streams.stream(f"churn:{name}:{fid}") for fid in self.flow_ids
        }
        self._started = False
        self._leaving: Set[Hashable] = set()
        self.active: Set[Hashable] = set()
        self.joins = 0
        self.leaves = 0
        self.sources: List[Source] = []
        link.departure_hooks.append(self._on_departure)

    def start(self) -> None:
        """Arm the churn process (schedules each flow's first join)."""
        if self._started:
            return
        self._started = True
        for fid in self.flow_ids:
            self._schedule_join(fid)

    # ------------------------------------------------------------------
    def _schedule_join(self, fid: Hashable) -> None:
        delay = self._rngs[fid].expovariate(1.0 / self.mean_off)
        when = self.sim.now + delay
        if self.stop_time is not None and when >= self.stop_time:
            return
        self.sim.at(when, self._join, fid)

    def _join(self, fid: Hashable) -> None:
        if fid in self.active or fid in self._leaving:
            return
        now = self.sim.now
        on_for = self._rngs[fid].expovariate(1.0 / self.mean_on)
        stop = now + on_for
        if self.stop_time is not None:
            stop = min(stop, self.stop_time)
        if fid not in self.link.scheduler.flows:
            self.link.scheduler.add_flow(fid, self.weight)
        source = self.make_source(fid, now, stop)
        self.sources.append(source)
        source.start()
        self.active.add(fid)
        self.joins += 1
        self.sim.at(stop, self._leave, fid)

    def _leave(self, fid: Hashable) -> None:
        if fid not in self.active:
            return
        self.active.discard(fid)
        self._leaving.add(fid)
        self._try_remove(fid)

    def _on_departure(self, packet: Packet, now: float) -> None:
        if packet.flow in self._leaving:
            self._try_remove(packet.flow)

    def _try_remove(self, fid: Hashable) -> None:
        """Remove the flow once its backlog has fully drained."""
        scheduler = self.link.scheduler
        if scheduler.flow_backlog(fid) > 0:
            return
        in_flight = self.link.in_flight
        if in_flight is not None and in_flight.flow == fid:
            return
        if fid in scheduler.flows:
            scheduler.remove_flow(fid)
        self._leaving.discard(fid)
        self.leaves += 1
        self._schedule_join(fid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowChurn({self.name}, joins={self.joins}, leaves={self.leaves}, "
            f"active={sorted(map(repr, self.active))})"
        )


class PacketFaults:
    """Seeded packet-level faults applied at an ingress point.

    Wraps any ingress callable (``switch.receive``, ``link.send``) and
    forwards packets through a fault pipeline:

    * **loss** — with probability ``p_loss`` the packet vanishes;
    * **misroute** — with probability ``p_misroute`` the packet's flow
      id is rewritten to ``misroute_flow`` (header corruption); at a
      switch with no route installed for that id this exercises the
      ``no_route_policy`` path;
    * **reorder** — with probability ``p_reorder`` the packet is held
      for ``Uniform(0, max_reorder_delay)`` before delivery, letting
      packets behind it overtake.

    Draws come from the stream ``"pktfaults:<name>"``, one draw per
    configured fault class per packet, in a fixed order — so the fault
    pattern for a given seed is independent of event interleavings.

    Use ``faults.send`` as the source's ingress.
    """

    def __init__(
        self,
        sim: Simulator,
        ingress: Ingress,
        *,
        streams: RandomStreams,
        p_loss: float = 0.0,
        p_misroute: float = 0.0,
        misroute_flow: Hashable = "__misrouted__",
        p_reorder: float = 0.0,
        max_reorder_delay: float = 0.0,
        name: str = "pktfaults",
    ) -> None:
        for label, p in (
            ("p_loss", p_loss),
            ("p_misroute", p_misroute),
            ("p_reorder", p_reorder),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {p}")
        if p_reorder > 0 and max_reorder_delay <= 0:
            raise ValueError("reordering needs max_reorder_delay > 0")
        self.sim = sim
        self.ingress = ingress
        self.p_loss = float(p_loss)
        self.p_misroute = float(p_misroute)
        self.misroute_flow = misroute_flow
        self.p_reorder = float(p_reorder)
        self.max_reorder_delay = float(max_reorder_delay)
        self._rng = streams.stream(f"pktfaults:{name}")
        self.lost = 0
        self.misrouted = 0
        self.reordered = 0
        self.delivered = 0

    def send(self, packet: Packet) -> None:
        """Fault pipeline ingress; deliver (or not) downstream."""
        rng = self._rng
        if self.p_loss > 0 and rng.random() < self.p_loss:
            self.lost += 1
            return
        if self.p_misroute > 0 and rng.random() < self.p_misroute:
            packet.meta["misrouted_from"] = packet.flow
            packet.flow = self.misroute_flow
            self.misrouted += 1
        if self.p_reorder > 0 and rng.random() < self.p_reorder:
            delay = rng.uniform(0.0, self.max_reorder_delay)
            self.reordered += 1
            self.sim.after(delay, self._deliver, packet)
            return
        self._deliver(packet)

    __call__ = send

    def _deliver(self, packet: Packet) -> None:
        packet.arrival = self.sim.now
        self.delivered += 1
        self.ingress(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketFaults(lost={self.lost}, misrouted={self.misrouted}, "
            f"reordered={self.reordered}, delivered={self.delivered})"
        )


class ServerStall:
    """Short scheduler freezes: the link stops dispatching for a moment.

    The paper's fluctuation-constrained server (Section 1) is one whose
    instantaneous rate dips below its nominal capacity for bounded
    stretches; a stall is that dip taken to zero. Unlike a
    :class:`LinkOutage`, a stall never destroys work: if a transmission
    is on the wire when the stall window opens, it is allowed to
    *finish* — the freeze only defers the start of the next service —
    and recovery is always ``"replay"``-clean.

    Parameters
    ----------
    schedule:
        Deterministic mode: ``(start, duration)`` pairs, strictly
        increasing and non-overlapping.
    streams, mean_time_between, mean_stall:
        Seeded mode: stalls arrive as a renewal process — after each
        recovery the next stall is ``Exp(mean_time_between)`` away and
        freezes the scheduler for ``Exp(mean_stall)``. Draws come from
        the stream ``"stall:<link name>"``.
    max_stalls, stop_time:
        Bounds for the seeded mode (either may be ``None``).

    Call :meth:`start` to arm the injector.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        schedule: Optional[Sequence[Tuple[float, float]]] = None,
        *,
        streams: Optional[RandomStreams] = None,
        mean_time_between: Optional[float] = None,
        mean_stall: Optional[float] = None,
        max_stalls: Optional[int] = None,
        stop_time: Optional[float] = None,
    ) -> None:
        seeded = streams is not None
        if seeded == (schedule is not None):
            raise ValueError(
                "provide exactly one of schedule= (deterministic) or "
                "streams= (seeded renewal process)"
            )
        if seeded and (mean_time_between is None or mean_stall is None):
            raise ValueError(
                "seeded mode needs mean_time_between and mean_stall"
            )
        if schedule is not None:
            last_end = float("-inf")
            for start, duration in schedule:
                if duration <= 0 or start <= last_end:
                    raise ValueError(
                        f"stall [{start}, +{duration}] overlaps or is empty"
                    )
                last_end = start + duration
        self.sim = sim
        self.link = link
        self.schedule = list(schedule) if schedule is not None else None
        self.mean_time_between = mean_time_between
        self.mean_stall = mean_stall
        self.max_stalls = max_stalls
        self.stop_time = stop_time
        self._rng = streams.stream(f"stall:{link.name}") if seeded else None
        self._started = False
        #: Stall window open, waiting for the in-flight packet to finish
        #: before the freeze can take hold.
        self._pending = False
        #: This injector currently owns a hold on the link.
        self._holding = False
        self.stalls = 0
        self.stalled_time = 0.0
        self._stall_since: Optional[float] = None
        link.departure_hooks.append(self._on_departure)

    def start(self) -> None:
        """Arm the injector (schedules the first stall)."""
        if self._started:
            return
        self._started = True
        if self.schedule is not None:
            for begin, duration in self.schedule:
                self.sim.at(begin, self._freeze)
                self.sim.at(begin + duration, self._thaw)
        else:
            self._schedule_stall()

    # ------------------------------------------------------------------
    def _schedule_stall(self) -> None:
        if self.max_stalls is not None and self.stalls >= self.max_stalls:
            return
        assert self._rng is not None
        assert self.mean_time_between is not None
        when = self.sim.now + self._rng.expovariate(1.0 / self.mean_time_between)
        if self.stop_time is not None and when >= self.stop_time:
            return
        self.sim.at(when, self._freeze)

    def _freeze(self) -> None:
        if self._pending or self._holding:
            return
        self.stalls += 1
        if self.link.busy:
            # Let the transmission on the wire complete; the departure
            # hook takes the hold the instant it does.
            self._pending = True
        else:
            self._holding = True
            self._stall_since = self.sim.now
            self.link.pause()
        if self._rng is not None:
            assert self.mean_stall is not None
            self.sim.after(
                self._rng.expovariate(1.0 / self.mean_stall), self._thaw
            )

    def _on_departure(self, packet: Packet, now: float) -> None:
        if self._pending:
            self._pending = False
            self._holding = True
            self._stall_since = now
            self.link.pause()

    def _thaw(self) -> None:
        if self._pending:
            # Window closed before the in-flight packet finished: the
            # freeze never took hold, nothing to release.
            self._pending = False
        elif self._holding:
            self._holding = False
            if self._stall_since is not None:
                self.stalled_time += self.sim.now - self._stall_since
                self._stall_since = None
            # A stall never owns an interrupted packet (it waited for
            # the wire to clear), so "replay" recovery is a pure
            # service-loop restart.
            self.link.resume("replay")
        if self._rng is not None:
            self._schedule_stall()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServerStall({self.link.name}, stalls={self.stalls}, "
            f"stalled={self.stalled_time:.9g}s)"
        )


#: Observer invoked after each applied re-weighting:
#: ``(flow_id, new_weight, now)``. The chaos runner hangs the fairness
#: monitor's span rebase off this.
ReweightHook = Callable[[Hashable, float, float], None]


class WeightReconfig:
    """Mid-run flow re-weighting through ``Scheduler.set_weight``.

    Theorem 1 is stated for constant rates :math:`r_f`; re-weighting a
    flow mid-run is therefore the control-plane event the fairness
    guarantee is most sensitive to — tags already assigned keep the old
    rate while subsequently arriving packets use the new one (the
    generalized per-packet-rate algorithm of Section 2.3). This
    injector drives exactly that event, deterministically or on a
    seeded clock.

    Parameters
    ----------
    events:
        Deterministic mode: ``(time, flow_id, new_weight)`` triples,
        applied in time order.
    streams, flow_ids, mean_interval:
        Seeded mode: every ``Exp(mean_interval)`` one flow of
        ``flow_ids`` (uniform choice) is re-weighted by a factor drawn
        uniformly from ``factor_range``, clamped to
        ``[min_weight, max_weight]``. Draws come from the stream
        ``"reweight:<name>"``.
    on_reweight:
        Optional observer called after each *applied* re-weighting.
        Monitors use this to restart measurement spans whose constants
        changed under them.

    Re-weightings addressed to flows the scheduler does not currently
    know (e.g. churned away) are counted in :attr:`skipped` and
    otherwise ignored — a control-plane update racing flow removal is
    not an error. Call :meth:`start` to arm the injector.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        events: Optional[Sequence[Tuple[float, Hashable, float]]] = None,
        *,
        streams: Optional[RandomStreams] = None,
        flow_ids: Optional[Sequence[Hashable]] = None,
        mean_interval: Optional[float] = None,
        factor_range: Tuple[float, float] = (0.5, 2.0),
        min_weight: float = 1e-6,
        max_weight: float = float("inf"),
        stop_time: Optional[float] = None,
        max_events: Optional[int] = None,
        name: str = "reweight",
        on_reweight: Optional[ReweightHook] = None,
    ) -> None:
        seeded = streams is not None
        if seeded == (events is not None):
            raise ValueError(
                "provide exactly one of events= (deterministic) or "
                "streams= (seeded process)"
            )
        if seeded and (not flow_ids or mean_interval is None):
            raise ValueError("seeded mode needs flow_ids and mean_interval")
        if events is not None:
            for _, _, weight in events:
                if weight <= 0:
                    raise ValueError(f"weight must be positive, got {weight}")
        if factor_range[0] <= 0 or factor_range[1] < factor_range[0]:
            raise ValueError(f"bad factor_range {factor_range}")
        self.sim = sim
        self.link = link
        self.events = list(events) if events is not None else None
        self.flow_ids = list(flow_ids) if flow_ids else []
        self.mean_interval = mean_interval
        self.factor_range = factor_range
        self.min_weight = float(min_weight)
        self.max_weight = float(max_weight)
        self.stop_time = stop_time
        self.max_events = max_events
        self.name = name
        self.on_reweight = on_reweight
        self._rng = streams.stream(f"reweight:{name}") if seeded else None
        self._started = False
        self.applied = 0
        self.skipped = 0

    def start(self) -> None:
        """Arm the injector."""
        if self._started:
            return
        self._started = True
        if self.events is not None:
            for when, flow_id, weight in self.events:
                self.sim.at(when, self._apply, flow_id, float(weight))
        else:
            self._schedule_next()

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        if self.max_events is not None and self.applied >= self.max_events:
            return
        assert self._rng is not None
        assert self.mean_interval is not None
        when = self.sim.now + self._rng.expovariate(1.0 / self.mean_interval)
        if self.stop_time is not None and when >= self.stop_time:
            return
        self.sim.at(when, self._tick)

    def _tick(self) -> None:
        rng = self._rng
        assert rng is not None
        flow_id = self.flow_ids[rng.randrange(len(self.flow_ids))]
        factor = rng.uniform(*self.factor_range)
        state = self.link.scheduler.flows.get(flow_id)
        if state is None:
            self.skipped += 1
        else:
            new_weight = min(
                max(state.weight * factor, self.min_weight), self.max_weight
            )
            self._apply(flow_id, new_weight)
        self._schedule_next()

    def _apply(self, flow_id: Hashable, weight: float) -> None:
        scheduler = self.link.scheduler
        if flow_id not in scheduler.flows:
            self.skipped += 1
            return
        scheduler.set_weight(flow_id, weight)
        self.applied += 1
        if self.on_reweight is not None:
            self.on_reweight(flow_id, weight, self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WeightReconfig({self.name}, applied={self.applied}, "
            f"skipped={self.skipped})"
        )
