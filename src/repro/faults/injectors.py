"""Fault injectors: outages, flow churn, and packet-level faults.

Each injector composes with the existing engine/link/switch stack — it
schedules ordinary events on the shared :class:`Simulator` and drives
public APIs (``Link.pause/resume``, ``Scheduler.add_flow/remove_flow``,
an ingress callable). All randomness is drawn from named
:class:`repro.simulation.random.RandomStreams` streams, so a faulted run
remains a pure function of its seed and fault configuration: two runs
with the same seed and schedule produce byte-identical traces.

* :class:`LinkOutage` — the link goes dark and comes back, on a
  deterministic ``[(down, up), ...]`` schedule or a seeded renewal
  process (exponential time-to-failure / time-to-repair);
* :class:`FlowChurn` — a pool of flows joins and leaves mid-run,
  exercising ``add_flow``/``remove_flow`` and SFQ's virtual-time
  restart rule (a re-joining flow's tag chain restarts at the current
  ``v(t)``, Section 2);
* :class:`PacketFaults` — seeded loss, header corruption (misrouting)
  and reordering applied at an ingress point, upstream of a switch or
  link.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.packet import Packet
from repro.servers.link import Link
from repro.simulation.engine import Simulator
from repro.simulation.random import RandomStreams
from repro.traffic.base import Ingress, Source

__all__ = ["LinkOutage", "FlowChurn", "PacketFaults"]

#: Builds the traffic source for a churn flow: (flow_id, start, stop) ->
#: an *unstarted* Source feeding the churned link.
SourceFactory = Callable[[Hashable, float, float], Source]


class LinkOutage:
    """Drives a link through down/up cycles.

    Parameters
    ----------
    schedule:
        Deterministic mode: a sequence of ``(down_time, up_time)``
        pairs, strictly increasing and non-overlapping.
    streams, mean_time_to_failure, mean_outage:
        Seeded mode: failures arrive as a renewal process — after each
        recovery the next failure is ``Exp(mean_time_to_failure)`` away
        and lasts ``Exp(mean_outage)``. Draws come from the stream
        ``"outage:<link name>"`` so adding an outage never perturbs any
        other random stream.
    recovery:
        ``"replay"`` retransmits the interrupted packet on recovery;
        ``"drop"`` discards it (see :meth:`repro.servers.link.Link.resume`).
    max_outages, stop_time:
        Bounds for the seeded mode (either may be ``None``).

    Call :meth:`start` to arm the injector.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        schedule: Optional[Sequence[Tuple[float, float]]] = None,
        *,
        streams: Optional[RandomStreams] = None,
        mean_time_to_failure: Optional[float] = None,
        mean_outage: Optional[float] = None,
        recovery: str = "replay",
        max_outages: Optional[int] = None,
        stop_time: Optional[float] = None,
    ) -> None:
        if recovery not in ("replay", "drop"):
            raise ValueError(
                f"recovery must be 'replay' or 'drop', got {recovery!r}"
            )
        seeded = streams is not None
        if seeded == (schedule is not None):
            raise ValueError(
                "provide exactly one of schedule= (deterministic) or "
                "streams= (seeded renewal process)"
            )
        if seeded and (mean_time_to_failure is None or mean_outage is None):
            raise ValueError(
                "seeded mode needs mean_time_to_failure and mean_outage"
            )
        if schedule is not None:
            last_up = float("-inf")
            for down, up in schedule:
                if not (last_up < down < up):
                    raise ValueError(
                        f"outage [{down}, {up}] overlaps or is inverted"
                    )
                last_up = up
        self.sim = sim
        self.link = link
        self.schedule = list(schedule) if schedule is not None else None
        self.recovery = recovery
        self.max_outages = max_outages
        self.stop_time = stop_time
        self.mean_time_to_failure = mean_time_to_failure
        self.mean_outage = mean_outage
        self._rng = streams.stream(f"outage:{link.name}") if seeded else None
        self._started = False
        self.outages = 0
        self.downtime = 0.0
        self._down_since: Optional[float] = None

    def start(self) -> None:
        """Arm the injector (schedules the first failure)."""
        if self._started:
            return
        self._started = True
        if self.schedule is not None:
            for down, up in self.schedule:
                self.sim.at(down, self._down)
                self.sim.at(up, self._up)
        else:
            self._schedule_failure()

    # ------------------------------------------------------------------
    def _schedule_failure(self) -> None:
        if self.max_outages is not None and self.outages >= self.max_outages:
            return
        assert self._rng is not None
        delay = self._rng.expovariate(1.0 / self.mean_time_to_failure)
        when = self.sim.now + delay
        if self.stop_time is not None and when >= self.stop_time:
            return
        self.sim.at(when, self._down)

    def _down(self) -> None:
        if self.link.paused:
            return
        self.outages += 1
        self._down_since = self.sim.now
        self.link.pause()
        if self._rng is not None:
            self.sim.after(
                self._rng.expovariate(1.0 / self.mean_outage), self._up
            )

    def _up(self) -> None:
        if not self.link.paused:
            return
        if self._down_since is not None:
            self.downtime += self.sim.now - self._down_since
            self._down_since = None
        self.link.resume(self.recovery)
        if self._rng is not None:
            self._schedule_failure()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkOutage({self.link.name}, outages={self.outages}, "
            f"downtime={self.downtime:.9g}s)"
        )


class FlowChurn:
    """A pool of flows joining and leaving a link mid-run.

    Each churn flow alternates off/on: after an ``Exp(mean_off)`` idle
    period it *joins* — registered with the link's scheduler at
    ``weight`` and driven by a traffic source built via
    ``make_source(flow_id, start, stop)`` — stays for ``Exp(mean_on)``,
    then *leaves*: its source stops, and once its last queued packet has
    drained the flow is removed from the scheduler (``remove_flow``
    rejects backlogged flows, so removal waits for the drain). A
    subsequent join re-registers the flow from scratch, which is exactly
    the path that exercises SFQ's virtual-time restart rule: the fresh
    tag chain starts at the *current* ``v(t)``, not at the flow's stale
    finish tag.

    Per-flow draws come from streams named ``"churn:<name>:<flow>"``, so
    churn timing is independent of everything else in the run.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        make_source: SourceFactory,
        *,
        streams: RandomStreams,
        flow_ids: Sequence[Hashable],
        mean_on: float,
        mean_off: float,
        weight: float = 1.0,
        stop_time: Optional[float] = None,
        name: str = "churn",
    ) -> None:
        if mean_on <= 0 or mean_off <= 0:
            raise ValueError("mean_on and mean_off must be positive")
        self.sim = sim
        self.link = link
        self.make_source = make_source
        self.flow_ids = list(flow_ids)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self.weight = float(weight)
        self.stop_time = stop_time
        self.name = name
        self._rngs = {
            fid: streams.stream(f"churn:{name}:{fid}") for fid in self.flow_ids
        }
        self._started = False
        self._leaving: Set[Hashable] = set()
        self.active: Set[Hashable] = set()
        self.joins = 0
        self.leaves = 0
        self.sources: List[Source] = []
        link.departure_hooks.append(self._on_departure)

    def start(self) -> None:
        """Arm the churn process (schedules each flow's first join)."""
        if self._started:
            return
        self._started = True
        for fid in self.flow_ids:
            self._schedule_join(fid)

    # ------------------------------------------------------------------
    def _schedule_join(self, fid: Hashable) -> None:
        delay = self._rngs[fid].expovariate(1.0 / self.mean_off)
        when = self.sim.now + delay
        if self.stop_time is not None and when >= self.stop_time:
            return
        self.sim.at(when, self._join, fid)

    def _join(self, fid: Hashable) -> None:
        if fid in self.active or fid in self._leaving:
            return
        now = self.sim.now
        on_for = self._rngs[fid].expovariate(1.0 / self.mean_on)
        stop = now + on_for
        if self.stop_time is not None:
            stop = min(stop, self.stop_time)
        if fid not in self.link.scheduler.flows:
            self.link.scheduler.add_flow(fid, self.weight)
        source = self.make_source(fid, now, stop)
        self.sources.append(source)
        source.start()
        self.active.add(fid)
        self.joins += 1
        self.sim.at(stop, self._leave, fid)

    def _leave(self, fid: Hashable) -> None:
        if fid not in self.active:
            return
        self.active.discard(fid)
        self._leaving.add(fid)
        self._try_remove(fid)

    def _on_departure(self, packet: Packet, now: float) -> None:
        if packet.flow in self._leaving:
            self._try_remove(packet.flow)

    def _try_remove(self, fid: Hashable) -> None:
        """Remove the flow once its backlog has fully drained."""
        scheduler = self.link.scheduler
        if scheduler.flow_backlog(fid) > 0:
            return
        in_flight = self.link.in_flight
        if in_flight is not None and in_flight.flow == fid:
            return
        if fid in scheduler.flows:
            scheduler.remove_flow(fid)
        self._leaving.discard(fid)
        self.leaves += 1
        self._schedule_join(fid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowChurn({self.name}, joins={self.joins}, leaves={self.leaves}, "
            f"active={sorted(map(repr, self.active))})"
        )


class PacketFaults:
    """Seeded packet-level faults applied at an ingress point.

    Wraps any ingress callable (``switch.receive``, ``link.send``) and
    forwards packets through a fault pipeline:

    * **loss** — with probability ``p_loss`` the packet vanishes;
    * **misroute** — with probability ``p_misroute`` the packet's flow
      id is rewritten to ``misroute_flow`` (header corruption); at a
      switch with no route installed for that id this exercises the
      ``no_route_policy`` path;
    * **reorder** — with probability ``p_reorder`` the packet is held
      for ``Uniform(0, max_reorder_delay)`` before delivery, letting
      packets behind it overtake.

    Draws come from the stream ``"pktfaults:<name>"``, one draw per
    configured fault class per packet, in a fixed order — so the fault
    pattern for a given seed is independent of event interleavings.

    Use ``faults.send`` as the source's ingress.
    """

    def __init__(
        self,
        sim: Simulator,
        ingress: Ingress,
        *,
        streams: RandomStreams,
        p_loss: float = 0.0,
        p_misroute: float = 0.0,
        misroute_flow: Hashable = "__misrouted__",
        p_reorder: float = 0.0,
        max_reorder_delay: float = 0.0,
        name: str = "pktfaults",
    ) -> None:
        for label, p in (
            ("p_loss", p_loss),
            ("p_misroute", p_misroute),
            ("p_reorder", p_reorder),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {p}")
        if p_reorder > 0 and max_reorder_delay <= 0:
            raise ValueError("reordering needs max_reorder_delay > 0")
        self.sim = sim
        self.ingress = ingress
        self.p_loss = float(p_loss)
        self.p_misroute = float(p_misroute)
        self.misroute_flow = misroute_flow
        self.p_reorder = float(p_reorder)
        self.max_reorder_delay = float(max_reorder_delay)
        self._rng = streams.stream(f"pktfaults:{name}")
        self.lost = 0
        self.misrouted = 0
        self.reordered = 0
        self.delivered = 0

    def send(self, packet: Packet) -> None:
        """Fault pipeline ingress; deliver (or not) downstream."""
        rng = self._rng
        if self.p_loss > 0 and rng.random() < self.p_loss:
            self.lost += 1
            return
        if self.p_misroute > 0 and rng.random() < self.p_misroute:
            packet.meta["misrouted_from"] = packet.flow
            packet.flow = self.misroute_flow
            self.misrouted += 1
        if self.p_reorder > 0 and rng.random() < self.p_reorder:
            delay = rng.uniform(0.0, self.max_reorder_delay)
            self.reordered += 1
            self.sim.after(delay, self._deliver, packet)
            return
        self._deliver(packet)

    __call__ = send

    def _deliver(self, packet: Packet) -> None:
        packet.arrival = self.sim.now
        self.delivered += 1
        self.ingress(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketFaults(lost={self.lost}, misrouted={self.misrouted}, "
            f"reordered={self.reordered}, delivered={self.delivered})"
        )
