"""Runtime invariant monitors.

The paper's guarantees are stated over *every* interval of a run, but
the existing analysis layer (:mod:`repro.analysis.fairness`) only checks
them post-hoc, on traces an experiment happened to keep. These monitors
hook into a live :class:`repro.servers.link.Link` and check the
invariants *while the simulation runs*, so a violation surfaces at the
instant it happens, with the offending window attached:

* :class:`FairnessMonitor` — Theorem 1's bound
  :math:`|W_f/r_f - W_g/r_g| \\le l_f^{max}/r_f + l_g^{max}/r_g`
  for every pair of continuously backlogged flows;
* :class:`VirtualTimeMonitor` — the system virtual time ``v(t)`` of a
  tag-based scheduler never decreases;
* :class:`ConservationAuditor` — every packet the link admits is
  eventually departed, dropped, or still queued (no silent loss, no
  double delivery).

Each violation is a structured :class:`InvariantViolation`. Monitors run
in ``mode="raise"`` (fail fast — debugging) or ``mode="record"``
(accumulate violations — measurement), and a link's monitors bundle into
a :class:`MonitorSuite` via :func:`install_monitors`.

Implementation note on the fairness check: for an interval
:math:`[t_1, t_2]` inside a common-backlog span, the normalized service
gap is :math:`D(t_2) - D(t_1)` where ``D`` is the running signed
difference of normalized work. Its maximum over all sub-intervals of the
span is therefore ``max D - min D`` over the span, which the monitor
maintains incrementally in O(1) per departure per pair — the same trick
that makes the offline :func:`empirical_fairness_measure` exact, without
storing the trace. Following the paper (Section 1.2), a packet counts
toward an interval only if it starts *and* finishes service inside it;
the monitor excludes the packet already on the wire when a pair's
common-backlog span opens.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.core.packet import Packet
from repro.metrics.hub import NULL_METRICS, MetricsHub
from repro.servers.link import Link

__all__ = [
    "InvariantViolation",
    "Monitor",
    "FairnessMonitor",
    "VirtualTimeMonitor",
    "ConservationAuditor",
    "MonitorSuite",
    "install_monitors",
]


class InvariantViolation(Exception):
    """A runtime invariant was broken.

    Attributes
    ----------
    invariant:
        Which monitor fired (``"fairness"``, ``"virtual-time"``,
        ``"packet-conservation"``).
    time:
        Simulation time of detection.
    window:
        ``(t1, t2)`` span of the offending trace window.
    detail:
        Human-readable description of the violation.
    """

    def __init__(
        self,
        invariant: str,
        time: float,
        detail: str,
        window: Optional[Tuple[float, float]] = None,
    ) -> None:
        self.invariant = invariant
        self.time = float(time)
        self.detail = detail
        self.window = window if window is not None else (self.time, self.time)
        super().__init__(
            f"[{invariant}] t={self.time:.9g} "
            f"window=[{self.window[0]:.9g}, {self.window[1]:.9g}]: {detail}"
        )

    def to_payload(self) -> Dict[str, Any]:
        """Plain-JSON form (chaos artifacts, ``ExperimentResult.data``)."""
        return {
            "invariant": self.invariant,
            "time": self.time,
            "window": [self.window[0], self.window[1]],
            "detail": self.detail,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "InvariantViolation":
        """Inverse of :meth:`to_payload`."""
        window = payload.get("window")
        return cls(
            str(payload["invariant"]),
            float(payload["time"]),
            str(payload["detail"]),
            (float(window[0]), float(window[1])) if window else None,
        )


class Monitor:
    """Base class: violation accumulation and raise/record modes."""

    invariant = "abstract"

    def __init__(self, mode: str = "raise", metrics: Optional[MetricsHub] = None) -> None:
        if mode not in ("raise", "record"):
            raise ValueError(f"mode must be 'raise' or 'record', got {mode!r}")
        self.mode = mode
        self.violations: List[InvariantViolation] = []
        #: Metrics hub violations are counted on (as
        #: ``invariant_violations{<invariant>}``); link-attached monitors
        #: pass their link's hub so violations land in that server's
        #: snapshot. Defaults to the null hub (no-op).
        self.metrics = metrics if metrics is not None else NULL_METRICS

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        """Raise the first recorded violation, if any."""
        if self.violations:
            raise self.violations[0]

    def _violate(
        self,
        time: float,
        detail: str,
        window: Optional[Tuple[float, float]] = None,
    ) -> InvariantViolation:
        violation = InvariantViolation(self.invariant, time, detail, window)
        self.violations.append(violation)
        if self.metrics.enabled:
            self.metrics.counter("invariant_violations", self.invariant).add()
        if self.mode == "raise":
            raise violation
        return violation


class _PairState:
    """Running gap statistics for one pair's common-backlog span."""

    __slots__ = ("since", "d", "dmin", "dmax")

    def __init__(self, since: float) -> None:
        self.since = since
        self.d = 0.0
        self.dmin = 0.0
        self.dmax = 0.0


class FairnessMonitor(Monitor):
    """Online check of Theorem 1's fairness bound at one link.

    For every pair of flows, over every maximal interval in which both
    are continuously backlogged, the difference in normalized service
    must stay within ``l_f_max/r_f + l_g_max/r_g`` (+ ``slack``). Rates
    are the flows' scheduler weights; max packet lengths are learned
    from the arrivals seen so far, exactly as the theorem's constants.

    ``bound_factor`` scales the bound — useful when monitoring a
    discipline with a *weaker* guarantee than SFQ (e.g. DRR's extra
    quantum term), or set ``float("inf")`` to just measure
    :attr:`max_gap` without ever firing.

    The monitor tracks at most ``max_flows`` flows (pair state is
    quadratic); later flows are ignored.
    """

    invariant = "fairness"

    def __init__(
        self,
        link: Link,
        mode: str = "raise",
        slack: float = 1e-9,
        bound_factor: float = 1.0,
        max_flows: int = 64,
    ) -> None:
        super().__init__(mode, metrics=link.metrics)
        self.link = link
        self.slack = float(slack)
        self.bound_factor = float(bound_factor)
        self.max_flows = int(max_flows)
        #: Largest normalized gap observed in any common-backlog window.
        self.max_gap = 0.0
        self.max_gap_pair: Optional[Tuple[Hashable, Hashable]] = None
        self._outstanding: Dict[Hashable, int] = {}
        self._weight: Dict[Hashable, float] = {}
        # Cached reciprocals (FlowState.inv_weight): _credit runs once
        # per departed packet, and the bound check carries explicit
        # slack, so a multiply is safe where the schedulers' tag math
        # is not.
        self._inv_weight: Dict[Hashable, float] = {}
        self._max_len: Dict[Hashable, int] = {}
        self._pairs: Dict[Tuple[Hashable, Hashable], _PairState] = {}
        # Per-flow index over _pairs so _credit touches only the pairs
        # the served flow participates in, not all O(flows^2) of them.
        self._flow_pairs: Dict[Hashable, Dict[Tuple[Hashable, Hashable], _PairState]] = {}
        self._admitted: Set[int] = set()  # uids currently in the link
        self._last_departure = float("-inf")
        link.arrival_hooks.append(self._on_arrival)
        link.departure_hooks.append(self._on_departure)
        link.drop_hooks.append(self._on_drop)

    # ------------------------------------------------------------------
    def _tracked(self, flow: Hashable) -> bool:
        return flow in self._weight

    def _on_arrival(self, packet: Packet, now: float) -> None:
        flow = packet.flow
        if not self._tracked(flow):
            if len(self._weight) >= self.max_flows:
                return
            state = self.link.scheduler.flows.get(flow)
            if state is None:
                # Composite scheduler managing flows internally;
                # nothing to normalize by — skip this flow.
                return
            self._weight[flow] = state.weight
            self._inv_weight[flow] = state.inv_weight
            self._max_len[flow] = 0
            self._outstanding[flow] = 0
        else:
            state = self.link.scheduler.flows.get(flow)
            if state is not None:
                self._weight[flow] = state.weight
                self._inv_weight[flow] = state.inv_weight
        if packet.length > self._max_len[flow]:
            self._max_len[flow] = packet.length
        self._admitted.add(packet.uid)
        self._outstanding[flow] += 1
        if self._outstanding[flow] == 1:
            # Flow just became backlogged: open a common-backlog span
            # with every other currently backlogged flow.
            for other, count in self._outstanding.items():
                if other == flow or count == 0:
                    continue
                key = self._key(flow, other)
                pair = _PairState(now)
                self._pairs[key] = pair
                self._flow_pairs.setdefault(flow, {})[key] = pair
                self._flow_pairs.setdefault(other, {})[key] = pair

    def _on_departure(self, packet: Packet, now: float) -> None:
        # A packet counts toward an interval only if it started service
        # inside it (paper Section 1.2). The start instant is bounded
        # below by both the packet's link-local arrival and the previous
        # departure of this serial server.
        started_lb = max(packet.arrival, self._last_departure)
        self._last_departure = now
        if packet.uid not in self._admitted:
            return
        self._admitted.discard(packet.uid)
        self._credit(packet.flow, packet.length, started_lb, now)
        self._finish_one(packet.flow, now)

    def _on_drop(self, packet: Packet, now: float) -> None:
        # A dropped packet leaves the backlog without being served.
        # Ingress-rejected packets never fired the arrival hook and must
        # not decrement; evicted or outage-dropped ones did and must.
        if packet.uid not in self._admitted:
            return
        self._admitted.discard(packet.uid)
        if packet.meta.get("outage_drop"):
            # The scheduler allocated this packet its service slot; the
            # outage destroyed it on the wire. Theorem 1 bounds the
            # *scheduler's* allocation, so the slot still counts —
            # otherwise every outage drop would masquerade as an
            # unfairness of the discipline.
            started_lb = max(packet.arrival, self._last_departure)
            self._last_departure = now
            self._credit(packet.flow, packet.length, started_lb, now)
        self._finish_one(packet.flow, now)

    def _credit(
        self, flow: Hashable, length: int, started_lb: float, now: float
    ) -> None:
        """Post ``length`` bits of service for ``flow`` to every open pair."""
        normalized = length * self._inv_weight[flow]
        pairs = self._flow_pairs.get(flow)
        if not pairs:
            return
        for (a, b), pair in pairs.items():
            if started_lb < pair.since - 1e-12:
                continue  # packet predates this common-backlog span
            pair.d += normalized if flow == a else -normalized
            if pair.d < pair.dmin:
                pair.dmin = pair.d
            if pair.d > pair.dmax:
                pair.dmax = pair.d
            gap = pair.dmax - pair.dmin
            if gap > self.max_gap:
                self.max_gap = gap
                self.max_gap_pair = (a, b)
            bound = (
                self._max_len[a] / self._weight[a]
                + self._max_len[b] / self._weight[b]
            ) * self.bound_factor + self.slack
            if gap > bound:
                self._violate(
                    now,
                    f"flows {a!r}/{b!r}: normalized service gap "
                    f"{gap:.9g} exceeds Theorem 1 bound {bound:.9g} "
                    f"({self.link.scheduler.algorithm} at {self.link.name})",
                    window=(pair.since, now),
                )

    def _finish_one(self, flow: Hashable, now: float) -> None:
        self._outstanding[flow] -= 1
        if self._outstanding[flow] == 0:
            # Backlog span over: close every pair involving this flow.
            closed = self._flow_pairs.pop(flow, None)
            if closed:
                for key in closed:
                    del self._pairs[key]
                    a, b = key
                    other = b if a == flow else a
                    other_pairs = self._flow_pairs.get(other)
                    if other_pairs is not None:
                        other_pairs.pop(key, None)

    def rebase_flow(self, flow: Hashable, now: float) -> None:
        """Restart every measurement span involving ``flow`` at ``now``.

        Theorem 1's constants (:math:`r_f`, :math:`l_f^{max}`) are fixed
        over the measured interval; when a flow is re-weighted mid-run
        (:class:`repro.faults.WeightReconfig`) the accumulated
        normalized-gap state mixes two rate regimes and stops meaning
        anything. Rebasing refreshes the cached weight from the
        scheduler and resets each open pair span as if the common
        backlog had just begun — the packet currently on the wire is
        naturally excluded by the span-start check in ``_credit``,
        exactly as at a span's first opening.
        """
        if not self._tracked(flow):
            return
        state = self.link.scheduler.flows.get(flow)
        if state is not None:
            self._weight[flow] = state.weight
            self._inv_weight[flow] = state.inv_weight
        pairs = self._flow_pairs.get(flow)
        if not pairs:
            return
        # Mutate in place: the same _PairState object is referenced from
        # _pairs and from both flows' indexes.
        for pair in pairs.values():
            pair.since = now
            pair.d = 0.0
            pair.dmin = 0.0
            pair.dmax = 0.0

    @staticmethod
    def _key(a: Hashable, b: Hashable) -> Tuple[Hashable, Hashable]:
        return (a, b) if repr(a) <= repr(b) else (b, a)


class VirtualTimeMonitor(Monitor):
    """Checks that a scheduler's system virtual time never decreases.

    SFQ's ``v(t)`` (Section 2, rule 2) is non-decreasing by
    construction: within a busy period it follows start tags of packets
    in service (served in non-decreasing start-tag order), and at the
    end of a busy period it jumps up to the max served finish tag. A
    decrease means corrupted scheduler state — e.g. a buggy flow-churn
    path resetting tags — and would silently break every fairness and
    delay guarantee downstream. Works with any scheduler exposing a
    ``virtual_time`` property (SFQ, SCFQ, WFQ, FQS).
    """

    invariant = "virtual-time"

    def __init__(self, link: Link, mode: str = "raise", eps: float = 1e-9) -> None:
        super().__init__(mode, metrics=link.metrics)
        if not hasattr(link.scheduler, "virtual_time"):
            raise TypeError(
                f"{link.scheduler.algorithm} exposes no virtual_time; "
                "VirtualTimeMonitor only applies to tag-based schedulers"
            )
        self.link = link
        self.eps = float(eps)
        self.last_v = float("-inf")
        self._last_check = 0.0
        link.arrival_hooks.append(self._check)
        link.departure_hooks.append(self._check)

    def _check(self, packet: Packet, now: float) -> None:
        # The constructor verified the attribute exists; the base
        # Scheduler type deliberately does not declare it.
        v = float(getattr(self.link.scheduler, "virtual_time"))
        if v < self.last_v - self.eps:
            self._violate(
                now,
                f"virtual time moved backwards: {v:.9g} < {self.last_v:.9g} "
                f"({self.link.scheduler.algorithm} at {self.link.name})",
                window=(self._last_check, now),
            )
        self.last_v = max(self.last_v, v)
        self._last_check = now


class ConservationAuditor(Monitor):
    """Packet conservation: admitted = departed + dropped + queued.

    Tracks every admitted packet's uid. A departure or drop of a packet
    that was never admitted (or already accounted) fires immediately —
    that is a double delivery. Silent loss is the inverse and cannot be
    seen from any single event, so call :meth:`audit` (e.g. at the end
    of a run) to reconcile the outstanding set against what the link's
    scheduler and transmitter actually still hold.
    """

    invariant = "packet-conservation"

    def __init__(self, link: Link, mode: str = "raise") -> None:
        super().__init__(mode, metrics=link.metrics)
        self.link = link
        self.admitted = 0
        self.departed = 0
        self.dropped = 0
        self._outstanding: Set[int] = set()
        link.arrival_hooks.append(self._on_arrival)
        link.departure_hooks.append(self._on_departure)
        link.drop_hooks.append(self._on_drop)

    def _on_arrival(self, packet: Packet, now: float) -> None:
        if packet.uid in self._outstanding:
            self._violate(now, f"packet uid={packet.uid} admitted twice")
            return
        self._outstanding.add(packet.uid)
        self.admitted += 1

    def _on_departure(self, packet: Packet, now: float) -> None:
        if packet.uid not in self._outstanding:
            self._violate(
                now,
                f"packet uid={packet.uid} (flow {packet.flow!r}) departed "
                "but was never admitted — double delivery or hook misuse",
            )
            return
        self._outstanding.discard(packet.uid)
        self.departed += 1

    def _on_drop(self, packet: Packet, now: float) -> None:
        # Rejected-at-ingress packets were never admitted; evicted and
        # outage-dropped ones were. Both are legitimate drops.
        self._outstanding.discard(packet.uid)
        self.dropped += 1

    @property
    def outstanding(self) -> int:
        """Packets admitted but not yet departed or dropped."""
        return len(self._outstanding)

    def audit(self) -> None:
        """Reconcile the books against the link's actual queue state.

        Every outstanding packet must be physically present: either
        queued in the scheduler or occupying the transmitter. A
        mismatch means a packet evaporated (or materialized) without
        any hook firing.
        """
        held = self.link.scheduler.backlog_packets
        if self.link.in_flight is not None:
            held += 1
        if self.outstanding != held:
            self._violate(
                self.link.sim.now,
                f"conservation mismatch at {self.link.name}: "
                f"{self.outstanding} packets unaccounted for vs {held} "
                f"physically held (admitted={self.admitted}, "
                f"departed={self.departed}, dropped={self.dropped})",
                window=(0.0, self.link.sim.now),
            )


class MonitorSuite:
    """The monitors installed on one link, as a unit."""

    def __init__(
        self,
        link: Link,
        fairness: Optional[FairnessMonitor],
        virtual_time: Optional[VirtualTimeMonitor],
        conservation: Optional[ConservationAuditor],
    ) -> None:
        self.link = link
        self.fairness = fairness
        self.virtual_time = virtual_time
        self.conservation = conservation

    @property
    def monitors(self) -> List[Monitor]:
        return [
            m
            for m in (self.fairness, self.virtual_time, self.conservation)
            if m is not None
        ]

    @property
    def violations(self) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        for monitor in self.monitors:
            out.extend(monitor.violations)
        out.sort(key=lambda v: v.time)
        return out

    def violations_payload(self) -> List[Dict[str, Any]]:
        """Every recorded violation in plain-JSON form, time-ordered.

        This is the structure experiments surface under
        ``ExperimentResult.data["violations"]`` — a machine-readable
        record, not just a counter.
        """
        return [v.to_payload() for v in self.violations]

    @property
    def ok(self) -> bool:
        return all(m.ok for m in self.monitors)

    @property
    def fail_fast(self) -> bool:
        """True when every installed monitor raises on first violation."""
        monitors = self.monitors
        return bool(monitors) and all(m.mode == "raise" for m in monitors)

    def audit(self) -> None:
        """Run the end-of-run conservation reconciliation."""
        if self.conservation is not None:
            self.conservation.audit()

    def assert_clean(self) -> None:
        """Audit, then raise the earliest violation if any was recorded."""
        self.audit()
        violations = self.violations
        if violations:
            raise violations[0]


def install_monitors(
    link: Link,
    mode: str = "record",
    fairness: bool = True,
    virtual_time: Optional[bool] = None,
    conservation: bool = True,
    slack: float = 1e-9,
    bound_factor: float = 1.0,
    fail_fast: Optional[bool] = None,
) -> MonitorSuite:
    """Attach the standard invariant monitors to ``link``.

    ``virtual_time=None`` auto-detects: the monitor is installed iff the
    link's scheduler exposes a ``virtual_time`` property.

    ``fail_fast`` is the ergonomic switch over ``mode``: ``True`` means
    raise at the first violation (``mode="raise"`` — debugging, CI
    gates), ``False`` means record and continue (``mode="record"`` —
    measurement, chaos campaigns). When given it overrides ``mode``;
    ``None`` leaves ``mode`` in charge.

    Returns the :class:`MonitorSuite`; call its
    :meth:`~MonitorSuite.audit` (or :meth:`~MonitorSuite.assert_clean`)
    after the run.
    """
    if fail_fast is not None:
        mode = "raise" if fail_fast else "record"
    if virtual_time is None:
        virtual_time = hasattr(link.scheduler, "virtual_time")
    return MonitorSuite(
        link,
        FairnessMonitor(link, mode=mode, slack=slack, bound_factor=bound_factor)
        if fairness
        else None,
        VirtualTimeMonitor(link, mode=mode) if virtual_time else None,
        ConservationAuditor(link, mode=mode) if conservation else None,
    )
