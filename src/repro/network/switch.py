"""Output-queued switch.

A :class:`Switch` classifies incoming packets by flow id and forwards
each to the :class:`repro.servers.link.Link` of its output port. All
queueing happens at the output links (output-queued model), which is
the model the paper's single-switch simulations use (Figure 1(a)).

A packet with no installed route is a *fault*, not a programming error,
in any long-running deployment (stale routing tables, misrouted or
corrupted headers). The ``no_route_policy`` knob decides whether such a
packet aborts the simulation (``"raise"``, the strict default) or is
dropped and counted (``"drop"``) so the rest of the network keeps
running — the behaviour a real switch exhibits.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional

from repro.core.packet import Packet
from repro.metrics.hub import MetricsHub
from repro.metrics.session import hub_for
from repro.servers.link import Link
from repro.simulation.engine import Simulator

#: Called with (packet, now) when a packet is dropped for lack of a route.
NoRouteHook = Callable[[Packet, float], None]


class RoutingError(Exception):
    """Raised when a packet has no route."""


class Switch:
    """A switch with named output ports, each backed by a Link.

    Parameters
    ----------
    no_route_policy:
        ``"raise"`` (default) raises :class:`RoutingError` on a packet
        with no route, aborting the run; ``"drop"`` silently discards
        it, increments :attr:`packets_dropped_no_route` and fires
        :attr:`drop_hooks` so monitors can account for the loss.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "switch",
        no_route_policy: str = "raise",
        metrics: Optional[MetricsHub] = None,
    ) -> None:
        if no_route_policy not in ("raise", "drop"):
            raise ValueError(
                f"no_route_policy must be 'raise' or 'drop', "
                f"got {no_route_policy!r}"
            )
        self.sim = sim
        self.name = name
        self.no_route_policy = no_route_policy
        self.ports: Dict[str, Link] = {}
        self._routes: Dict[Hashable, str] = {}
        self.packets_forwarded = 0
        self.packets_dropped_no_route = 0
        self.drop_hooks: List[NoRouteHook] = []
        #: Online instruments (same ambient wiring as Link.metrics).
        self.metrics = metrics if metrics is not None else hub_for(name)

    def add_port(self, port_name: str, link: Link) -> Link:
        if port_name in self.ports:
            raise RoutingError(f"port {port_name!r} already exists on {self.name}")
        self.ports[port_name] = link
        return link

    def add_route(self, flow_id: Hashable, port_name: str) -> None:
        if port_name not in self.ports:
            raise RoutingError(f"no port {port_name!r} on {self.name}")
        self._routes[flow_id] = port_name

    def remove_route(self, flow_id: Hashable) -> None:
        """Uninstall a route (flow churn); unknown flow ids are a no-op."""
        self._routes.pop(flow_id, None)

    def receive(self, packet: Packet) -> None:
        """Ingress: forward the packet to its output port's link."""
        port_name = self._routes.get(packet.flow)
        if port_name is None:
            if self.no_route_policy == "raise":
                raise RoutingError(
                    f"{self.name}: no route for flow {packet.flow!r}"
                )
            self.packets_dropped_no_route += 1
            if self.metrics.enabled:
                self.metrics.counter("no_route_drops", packet.flow).add()
            now = self.sim.now
            for hook in self.drop_hooks:
                hook(packet, now)
            return
        self.packets_forwarded += 1
        if self.metrics.enabled:
            self.metrics.counter("packets_forwarded", packet.flow).add()
        self.ports[port_name].send(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Switch({self.name}, ports={sorted(self.ports)})"
