"""Output-queued switch.

A :class:`Switch` classifies incoming packets by flow id and forwards
each to the :class:`repro.servers.link.Link` of its output port. All
queueing happens at the output links (output-queued model), which is
the model the paper's single-switch simulations use (Figure 1(a)).
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.core.packet import Packet
from repro.servers.link import Link
from repro.simulation.engine import Simulator


class RoutingError(Exception):
    """Raised when a packet has no route."""


class Switch:
    """A switch with named output ports, each backed by a Link."""

    def __init__(self, sim: Simulator, name: str = "switch") -> None:
        self.sim = sim
        self.name = name
        self.ports: Dict[str, Link] = {}
        self._routes: Dict[Hashable, str] = {}
        self.packets_forwarded = 0

    def add_port(self, port_name: str, link: Link) -> Link:
        if port_name in self.ports:
            raise RoutingError(f"port {port_name!r} already exists on {self.name}")
        self.ports[port_name] = link
        return link

    def add_route(self, flow_id: Hashable, port_name: str) -> None:
        if port_name not in self.ports:
            raise RoutingError(f"no port {port_name!r} on {self.name}")
        self._routes[flow_id] = port_name

    def receive(self, packet: Packet) -> None:
        """Ingress: forward the packet to its output port's link."""
        port_name = self._routes.get(packet.flow)
        if port_name is None:
            raise RoutingError(
                f"{self.name}: no route for flow {packet.flow!r}"
            )
        self.packets_forwarded += 1
        self.ports[port_name].send(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Switch({self.name}, ports={sorted(self.ports)})"
