"""Multi-hop tandem paths for end-to-end delay experiments.

Corollary 1 of the paper bounds the departure time of a packet from the
K-th server of a path in terms of its expected arrival time at the
*first* server, summing per-hop β terms and propagation delays. The
:class:`Tandem` wires K links in series: when a packet departs hop i it
is re-injected (as a fresh copy with fresh scheduler tags, per the GR
framework's per-server EAT) into hop i+1 after the configured
propagation delay.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.base import Scheduler
from repro.core.packet import Packet
from repro.servers.base import CapacityProcess
from repro.servers.link import Link
from repro.simulation.engine import Simulator
from repro.transport.sink import PacketSink

#: Decides whether a packet continues to the next hop; packets it
#: rejects terminate at the hop where they were served (hop-local cross
#: traffic in end-to-end experiments).
ForwardFilter = Callable[[Packet], bool]


class Tandem:
    """K servers in series with per-hop propagation delays."""

    def __init__(
        self,
        sim: Simulator,
        schedulers: Sequence[Scheduler],
        capacities: Sequence[CapacityProcess],
        propagation_delays: Optional[Sequence[float]] = None,
        name: str = "tandem",
        forward_filter: Optional[ForwardFilter] = None,
    ) -> None:
        if len(schedulers) != len(capacities):
            raise ValueError("need one capacity per scheduler")
        k = len(schedulers)
        if k == 0:
            raise ValueError("a tandem needs at least one hop")
        if propagation_delays is None:
            propagation_delays = [0.0] * (k - 1)
        if len(propagation_delays) != k - 1:
            raise ValueError(f"need {k - 1} propagation delays, got {len(propagation_delays)}")
        self.sim = sim
        self.forward_filter = forward_filter
        self.propagation_delays = [float(d) for d in propagation_delays]
        self.links: List[Link] = [
            Link(sim, sched, cap, name=f"{name}-hop{i}")
            for i, (sched, cap) in enumerate(zip(schedulers, capacities))
        ]
        self.sink = PacketSink(f"{name}-sink")
        for i, link in enumerate(self.links):
            if i + 1 < k:
                link.departure_hooks.append(self._forwarder(i))
            else:
                link.departure_hooks.append(self.sink.on_packet)

    def _forwarder(self, hop: int) -> Callable[[Packet, float], None]:
        delay = self.propagation_delays[hop]
        next_link = self.links[hop + 1]

        def forward(packet: Packet, now: float) -> None:
            if self.forward_filter is not None and not self.forward_filter(packet):
                return
            clone = packet.fork()
            clone.meta["hop"] = hop + 1
            self.sim.call_after(delay, self._inject, next_link, clone)

        return forward

    @staticmethod
    def _inject(link: Link, packet: Packet) -> None:
        packet.arrival = link.sim.now
        link.send(packet)

    @property
    def ingress(self) -> Callable[[Packet], object]:
        """Entry point for sources: the first hop's ``send``."""
        return self.links[0].send

    def end_to_end_delays(self, flow) -> List[float]:
        """Total delays (first-hop arrival to last-hop departure)."""
        return list(self.sink.end_to_end_delays.get(flow, []))
