"""Network substrate: switches, topologies, multi-hop tandems."""

from repro.network.path import Tandem
from repro.network.routing import RoutedNetwork
from repro.network.switch import RoutingError, Switch
from repro.network.topology import Network, single_switch_topology

__all__ = [
    "Switch",
    "RoutingError",
    "Network",
    "single_switch_topology",
    "Tandem",
    "RoutedNetwork",
]
