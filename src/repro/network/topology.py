"""Network container: named switches, links and sinks on one simulator.

A light registry that keeps the pieces of a topology together and
offers the Figure 1(a) builder used by examples and benchmarks: N
sources feeding one switch whose single output link runs a configurable
scheduler (optionally behind strict priority bands).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.core.base import Scheduler
from repro.servers.base import CapacityProcess
from repro.servers.link import Link
from repro.simulation.engine import Simulator
from repro.network.switch import Switch
from repro.transport.sink import PacketSink


class Network:
    """Registry of simulation components forming one topology."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.switches: Dict[str, Switch] = {}
        self.links: Dict[str, Link] = {}
        self.sinks: Dict[str, PacketSink] = {}

    def add_switch(self, name: str, no_route_policy: str = "raise") -> Switch:
        if name in self.switches:
            raise ValueError(f"switch {name!r} already exists")
        switch = Switch(self.sim, name, no_route_policy=no_route_policy)
        self.switches[name] = switch
        return switch

    def add_link(
        self,
        name: str,
        scheduler: Scheduler,
        capacity: CapacityProcess,
        buffer_packets: Optional[int] = None,
        buffer_bits: Optional[int] = None,
    ) -> Link:
        if name in self.links:
            raise ValueError(f"link {name!r} already exists")
        link = Link(
            self.sim,
            scheduler,
            capacity,
            name=name,
            buffer_packets=buffer_packets,
            buffer_bits=buffer_bits,
        )
        self.links[name] = link
        return link

    def add_sink(self, name: str) -> PacketSink:
        if name in self.sinks:
            raise ValueError(f"sink {name!r} already exists")
        sink = PacketSink(name)
        self.sinks[name] = sink
        return sink

    def connect(self, link_name: str, sink_name: str) -> None:
        """Deliver packets departing ``link_name`` to ``sink_name``."""
        self.links[link_name].departure_hooks.append(
            self.sinks[sink_name].on_packet
        )

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)


def single_switch_topology(
    scheduler: Scheduler,
    capacity: CapacityProcess,
    flow_ids,
    buffer_packets: Optional[int] = None,
    sim: Optional[Simulator] = None,
) -> Network:
    """The paper's Figure 1(a) shape: sources -> switch -> one output link.

    Returns a :class:`Network` with switch ``"sw"``, link ``"out"`` and
    sink ``"dst"`` wired together, with a route installed for every flow
    in ``flow_ids``. Sources should send into
    ``net.switches["sw"].receive``.
    """
    net = Network(sim)
    switch = net.add_switch("sw")
    link = net.add_link("out", scheduler, capacity, buffer_packets=buffer_packets)
    switch.add_port("down", link)
    sink = net.add_sink("dst")
    net.connect("out", "dst")
    for flow_id in flow_ids:
        switch.add_route(flow_id, "down")
    return net
