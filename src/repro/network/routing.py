"""Multi-switch topologies with shortest-path routing (networkx).

The paper's experiments use single-switch and tandem shapes, but an
adoptable library needs general topologies. :class:`RoutedNetwork`
builds an arbitrary switch graph, computes per-flow shortest paths
(hop count or additive link weights) with networkx, installs routes on
every switch, and forwards packets hop by hop with per-link propagation
delays. All per-hop queueing uses the same Link/Scheduler machinery as
the rest of the library, so any discipline — including hierarchical
SFQ — can run on any edge.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

import networkx as nx

from repro.core.base import Scheduler
from repro.core.packet import Packet
from repro.servers.base import CapacityProcess
from repro.servers.link import Link
from repro.simulation.engine import Simulator
from repro.transport.sink import PacketSink

SchedulerFactory = Callable[[], Scheduler]
CapacityFactory = Callable[[], CapacityProcess]


class RoutedNetwork:
    """A graph of switches; flows routed along shortest paths."""

    def __init__(
        self,
        sim: Simulator,
        scheduler_factory: SchedulerFactory,
        capacity_factory: CapacityFactory,
    ) -> None:
        self.sim = sim
        self.graph = nx.DiGraph()
        self._scheduler_factory = scheduler_factory
        self._capacity_factory = capacity_factory
        #: (src, dst) node pair -> the Link carrying that edge.
        self.links: Dict[Tuple[str, str], Link] = {}
        #: flow id -> list of nodes on its path.
        self.flow_paths: Dict[Hashable, List[str]] = {}
        #: flow id -> (weight, per-hop registration done)
        self._flow_weights: Dict[Hashable, float] = {}
        self.sink = PacketSink("net-sink")

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> None:
        self.graph.add_node(name)

    def add_edge(
        self,
        src: str,
        dst: str,
        propagation_delay: float = 0.0,
        weight: float = 1.0,
        scheduler: Optional[Scheduler] = None,
        capacity: Optional[CapacityProcess] = None,
        bidirectional: bool = True,
    ) -> None:
        """Add a link (both directions by default)."""
        pairs = [(src, dst)] + ([(dst, src)] if bidirectional else [])
        for a, b in pairs:
            if (a, b) in self.links:
                raise ValueError(f"edge {a}->{b} already exists")
            link = Link(
                self.sim,
                scheduler if scheduler is not None and (a, b) == (src, dst)
                else self._scheduler_factory(),
                capacity if capacity is not None and (a, b) == (src, dst)
                else self._capacity_factory(),
                name=f"{a}->{b}",
            )
            self.graph.add_edge(a, b, weight=weight, delay=propagation_delay)
            self.links[(a, b)] = link
            link.departure_hooks.append(self._forwarder(a, b, propagation_delay))

    # ------------------------------------------------------------------
    # Flows and routing
    # ------------------------------------------------------------------
    def add_flow(
        self, flow_id: Hashable, src: str, dst: str, weight: float = 1.0
    ) -> List[str]:
        """Route ``flow_id`` from src to dst; registers it on every hop."""
        if flow_id in self.flow_paths:
            raise ValueError(f"flow {flow_id!r} already routed")
        path = nx.shortest_path(self.graph, src, dst, weight="weight")
        self.flow_paths[flow_id] = path
        self._flow_weights[flow_id] = weight
        for a, b in zip(path, path[1:]):
            scheduler = self.links[(a, b)].scheduler
            if flow_id not in scheduler.flows:
                scheduler.add_flow(flow_id, weight)
        return path

    def inject(self, packet: Packet) -> None:
        """Send a packet from its flow's source node."""
        path = self.flow_paths.get(packet.flow)
        if path is None:
            raise ValueError(f"flow {packet.flow!r} has no route")
        if len(path) < 2:
            self.sink.on_packet(packet, self.sim.now)
            return
        packet.meta["path_index"] = 0
        self.links[(path[0], path[1])].send(packet)

    def ingress(self, flow_id: Hashable) -> Callable[[Packet], None]:
        """An ingress callable for sources bound to one flow.

        The returned callable refuses packets of any other flow — a
        mis-wired source fails loudly instead of silently taking a
        different route.
        """

        def send(packet: Packet) -> None:
            if packet.flow != flow_id:
                raise ValueError(
                    f"ingress bound to {flow_id!r} got a packet of "
                    f"{packet.flow!r}"
                )
            self.inject(packet)

        return send

    def _forwarder(self, a: str, b: str, delay: float):
        def forward(packet: Packet, now: float) -> None:
            path = self.flow_paths.get(packet.flow)
            if path is None:
                return
            idx = packet.meta.get("path_index", 0)
            if idx + 2 >= len(path):
                # b is the destination.
                self.sim.call_after(delay, self.sink.on_packet, packet, now + delay)
                return
            nxt = path[idx + 2]
            clone = packet.fork()
            clone.meta["path_index"] = idx + 1
            next_link = self.links[(path[idx + 1], nxt)]
            self.sim.call_after(delay, self._inject_at, next_link, clone)

        return forward

    def _inject_at(self, link: Link, packet: Packet) -> None:
        packet.arrival = self.sim.now
        link.send(packet)

    # ------------------------------------------------------------------
    def path_propagation_delay(self, flow_id: Hashable) -> float:
        path = self.flow_paths[flow_id]
        return sum(
            self.graph.edges[a, b]["delay"] for a, b in zip(path, path[1:])
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoutedNetwork(nodes={self.graph.number_of_nodes()}, "
            f"edges={self.graph.number_of_edges()}, flows={len(self.flow_paths)})"
        )
