"""Start-time Fair Queuing: a full reproduction of Goyal, Vin & Cheng
(UT Austin TR-96-02 / ACM SIGCOMM 1996).

Subpackages
-----------
``repro.core``
    SFQ (the paper's contribution) and every baseline it compares:
    WFQ/PGPS, FQS, SCFQ, DRR, WRR, Virtual Clock, Delay EDD, FIFO, Fair
    Airport; plus hierarchical link sharing and strict priority bands.
``repro.simulation``
    Heapq-based discrete-event engine, seeded RNG streams, tracing.
``repro.servers``
    Constant, Fluctuation Constrained (FC) and Exponentially Bounded
    Fluctuation (EBF) capacity processes; the Link service loop.
``repro.traffic``
    CBR / bulk / Poisson / on-off / MPEG-VBR / trace sources, leaky
    bucket shaping.
``repro.transport``
    Simplified TCP Reno and packet sinks.
``repro.network``
    Output-queued switches, topologies, multi-hop tandems.
``repro.analysis``
    Empirical fairness measures, the paper's theorem bounds (Theorems
    1-9, Corollary 1), admission control, statistics.
``repro.experiments``
    One module per paper table/figure, regenerating its rows/series.

Quickstart
----------
>>> from repro import Simulator, make_scheduler, ConstantCapacity, Link, Packet
>>> sim = Simulator()
>>> sfq = make_scheduler("SFQ")
>>> _ = sfq.add_flow("audio", weight=64_000.0)
>>> _ = sfq.add_flow("video", weight=1_000_000.0)
>>> link = Link(sim, sfq, ConstantCapacity(1_500_000.0))
>>> for i in range(10):
...     _ = sim.at(0.0, lambda s: link.send(Packet("audio", 1600, seqno=s)), i)
>>> _ = sim.run()
"""

from repro.core import (
    DRR,
    FIFO,
    FQS,
    SCFQ,
    SFQ,
    WFQ,
    WRR,
    DelayEDD,
    FairAirport,
    HierarchicalScheduler,
    Packet,
    Scheduler,
    SchedulerError,
    TieBreak,
    VirtualClock,
    available_schedulers,
    bits,
    describe_scheduler,
    kbps,
    list_schedulers,
    make_scheduler,
    mbps,
    scheduler_spec,
)
from repro.core.priority import PriorityBands
from repro.metrics import MetricsSession, Snapshot
from repro.core.wf2q import WF2Q
from repro.servers import (
    BernoulliCapacity,
    ConstantCapacity,
    FluctuationConstrainedCapacity,
    GilbertElliottCapacity,
    Link,
    PeriodicStall,
    PiecewiseCapacity,
    TwoRateSquareWave,
    UniformSlotCapacity,
)
from repro.simulation import RandomStreams, Simulator, Tracer

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # simulation
    "Simulator",
    "RandomStreams",
    "Tracer",
    # construction API
    "make_scheduler",
    "available_schedulers",
    "list_schedulers",
    "describe_scheduler",
    "scheduler_spec",
    # metrics
    "MetricsSession",
    "Snapshot",
    # schedulers
    "Scheduler",
    "SchedulerError",
    "TieBreak",
    "SFQ",
    "SCFQ",
    "WFQ",
    "FQS",
    "WF2Q",
    "DRR",
    "WRR",
    "FIFO",
    "VirtualClock",
    "DelayEDD",
    "FairAirport",
    "HierarchicalScheduler",
    "PriorityBands",
    "Packet",
    "bits",
    "kbps",
    "mbps",
    # servers
    "Link",
    "ConstantCapacity",
    "PiecewiseCapacity",
    "TwoRateSquareWave",
    "PeriodicStall",
    "FluctuationConstrainedCapacity",
    "BernoulliCapacity",
    "UniformSlotCapacity",
    "GilbertElliottCapacity",
]
