"""Traffic source base class.

A :class:`Source` generates packets for one flow and hands them to an
*ingress* callable (usually ``Link.send`` or ``Switch.receive``). All
sources are driven by the shared simulator and support start/stop times
so experiments can activate flows mid-run (Figure 1's source 3 starts
500 ms late; Figure 3's connections terminate one by one).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Callable, Hashable, Optional

from repro.core.packet import Packet
from repro.simulation.engine import Simulator

Ingress = Callable[[Packet], object]


class Source(ABC):
    """Base class for packet generators."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: Hashable,
        ingress: Ingress,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        max_packets: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.ingress = ingress
        self.start_time = float(start_time)
        self.stop_time = stop_time
        self.max_packets = max_packets
        self._seq = itertools.count()
        self.packets_sent = 0
        self.bits_sent = 0
        self._started = False

    def start(self) -> None:
        """Arm the source; the first packet is scheduled at start_time."""
        if self._started:
            return
        self._started = True
        self.sim.call_at(self.start_time, self._begin)

    def _begin(self) -> None:
        self._schedule_next()

    @abstractmethod
    def _schedule_next(self) -> None:
        """Schedule the next emission (subclass responsibility)."""

    # ------------------------------------------------------------------
    def _exhausted(self) -> bool:
        if self.max_packets is not None and self.packets_sent >= self.max_packets:
            return True
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            return True
        return False

    def _emit(self, length: int, rate: Optional[float] = None) -> Optional[Packet]:
        """Create and deliver one packet now; respects stop conditions."""
        if self._exhausted():
            return None
        packet = Packet(
            self.flow_id,
            length,
            arrival=self.sim.now,
            seqno=next(self._seq),
            rate=rate,
        )
        self.packets_sent += 1
        self.bits_sent += length
        self.ingress(packet)
        return packet

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(flow={self.flow_id!r}, sent={self.packets_sent})"
