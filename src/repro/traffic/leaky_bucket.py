"""Leaky (token) bucket shaping — (σ, ρ) flow characterization.

Section 2.3 and Appendix A.5 of the paper use leaky-bucket-constrained
flows: a flow conforms to ``(sigma, rho)`` if in any interval of length
``t`` it injects at most ``sigma + rho * t`` bits. This module provides

* :class:`LeakyBucketShaper` — an inline component that delays packets
  just enough to make the output conform (used to shape high-priority
  traffic so the residual is FC(C − ρ, σ));
* :func:`conforms` — an offline conformance checker used by tests and by
  the end-to-end delay experiments to certify their input traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Tuple

from repro.core.packet import Packet
from repro.simulation.engine import Simulator
from repro.traffic.base import Ingress


class LeakyBucketShaper:
    """Token-bucket shaper: delays packets to conform to (sigma, rho).

    Insert between a source and a link::

        shaper = LeakyBucketShaper(sim, link.send, sigma, rho)
        source = CBRSource(sim, "f", shaper.send, ...)

    Tokens (bits) accrue at ``rho`` up to a cap of ``sigma``; a packet is
    released when the bucket holds its full length.
    """

    def __init__(self, sim: Simulator, egress: Ingress, sigma: float, rho: float) -> None:
        if sigma <= 0 or rho <= 0:
            raise ValueError("sigma and rho must be positive")
        self.sim = sim
        self.egress = egress
        self.sigma = float(sigma)
        self.rho = float(rho)
        self._tokens = float(sigma)
        self._last_update = 0.0
        self._queue: Deque[Packet] = deque()
        self._release_pending = False
        self.packets_shaped = 0

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(self.sigma, self._tokens + self.rho * (now - self._last_update))
        self._last_update = now

    def send(self, packet: Packet) -> None:
        """Accept a packet; forward now or once tokens suffice."""
        if packet.length > self.sigma:
            raise ValueError(
                f"packet of {packet.length} bits can never conform to sigma={self.sigma}"
            )
        self._queue.append(packet)
        self._drain()

    def _drain(self) -> None:
        self._refill()
        # Small epsilon: a release timer computed from a token deficit
        # can round to zero simulated time, which would re-run _drain at
        # the same instant with the same token count, forever.
        eps = 1e-9 * self.sigma
        while self._queue and self._queue[0].length <= self._tokens + eps:
            packet = self._queue.popleft()
            self._tokens = max(0.0, self._tokens - packet.length)
            packet.arrival = self.sim.now
            self.packets_shaped += 1
            self.egress(packet)
        if self._queue and not self._release_pending:
            deficit = self._queue[0].length - self._tokens
            delay = max(deficit / self.rho, 1e-9)
            self._release_pending = True
            self.sim.call_after(delay, self._release)

    def _release(self) -> None:
        self._release_pending = False
        self._drain()

    @property
    def backlog(self) -> int:
        return len(self._queue)


def conforms(
    arrivals: Iterable[Tuple[float, int]], sigma: float, rho: float, tol: float = 1e-9
) -> bool:
    """Check offline that ``(time, length)`` arrivals satisfy (σ, ρ).

    Uses the virtual-queue formulation: serve the arrivals at rate ρ;
    conformance holds iff the virtual backlog never exceeds σ.
    """
    backlog = 0.0
    last_t = None
    for t, length in arrivals:
        if last_t is not None:
            if t < last_t:
                raise ValueError("arrivals must be time-ordered")
            backlog = max(0.0, backlog - rho * (t - last_t))
        backlog += length
        last_t = t
        if backlog > sigma + tol:
            return False
    return True
