"""Packet-trace file I/O (CSV).

Trace-driven evaluation needs traces to move between tools; the format
here is deliberately minimal: one ``arrival_seconds,length_bits`` pair
per line, ``#`` comments allowed. :class:`~repro.traffic.trace.
TraceSource` replays what :func:`load_trace` reads, and any source can
be captured with :func:`record_source` for later replay — e.g. freezing
one draw of the synthetic MPEG model so every scheduler under test sees
the byte-identical "video tape".
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Tuple

from repro.core.packet import Packet

TracePair = Tuple[float, int]


def save_trace(path, trace: List[TracePair], header: str = "") -> None:
    """Write ``(arrival_seconds, length_bits)`` pairs as CSV."""
    lines = []
    if header:
        for line in header.splitlines():
            lines.append(f"# {line}")
    lines.append("# arrival_seconds,length_bits")
    for t, length in trace:
        if length <= 0:
            raise ValueError(f"non-positive length {length} at t={t}")
        lines.append(f"{t!r},{int(length)}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_trace(path) -> List[TracePair]:
    """Read a CSV trace written by :func:`save_trace` (or by hand)."""
    trace: List[TracePair] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            t_str, len_str = line.split(",")
            t, length = float(t_str), int(len_str)
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: bad trace line {raw!r}") from exc
        if length <= 0:
            raise ValueError(f"{path}:{lineno}: non-positive length {length}")
        trace.append((t, length))
    trace.sort(key=lambda p: p[0])
    return trace


def record_source(ingress_consumer: Callable[[Packet], object] = None):
    """Build a recording tap: returns ``(tap, trace_list)``.

    ``tap`` is an ingress callable that appends ``(arrival, length)`` to
    ``trace_list`` and forwards to ``ingress_consumer`` (if given). Wire
    it between a source and a link to capture exactly what was offered:

    >>> tap, trace = record_source(link.send)   # doctest: +SKIP
    >>> src = CBRSource(sim, "f", tap, ...)     # doctest: +SKIP
    """
    trace: List[TracePair] = []

    def tap(packet: Packet):
        trace.append((packet.arrival, packet.length))
        if ingress_consumer is not None:
            return ingress_consumer(packet)
        return None

    return tap, trace
