"""Trace-driven source: replay an explicit ``(time, length)`` schedule.

Used to reproduce the paper's hand-crafted adversarial workloads exactly
(Example 1's two-packets-then-three-halves pattern, Example 2's burst of
C+1 unit packets at t=0) and to replay externally generated traces.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from repro.simulation.engine import Simulator
from repro.traffic.base import Ingress, Source


class TraceSource(Source):
    """Replays ``(time, length_bits)`` pairs (absolute times, seconds)."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: Hashable,
        ingress: Ingress,
        schedule: Sequence[Tuple[float, int]],
        rate: Optional[float] = None,
    ) -> None:
        ordered: List[Tuple[float, int]] = sorted(schedule, key=lambda p: p[0])
        start = ordered[0][0] if ordered else 0.0
        super().__init__(sim, flow_id, ingress, start_time=start)
        self.schedule = ordered
        self.per_packet_rate = rate
        self._idx = 0

    def _begin(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        # Emit all packets due now, then arm the next emission.
        while self._idx < len(self.schedule):
            t, length = self.schedule[self._idx]
            if t > self.sim.now + 1e-15:
                self.sim.call_at(t, self._schedule_next)
                return
            self._idx += 1
            self._emit(int(length), rate=self.per_packet_rate)
