"""Constant-bit-rate and bulk (always-backlogged) sources."""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from repro.core.packet import Packet
from repro.simulation.engine import Simulator
from repro.traffic.base import Ingress, Source


class CBRSource(Source):
    """Emits fixed-length packets at a constant rate.

    The inter-packet gap is ``length / rate`` so the long-run bit rate
    equals ``rate``.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: Hashable,
        ingress: Ingress,
        rate: float,
        packet_length: int,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        max_packets: Optional[int] = None,
        jitter: float = 0.0,
        rng=None,
    ) -> None:
        super().__init__(sim, flow_id, ingress, start_time, stop_time, max_packets)
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.packet_length = int(packet_length)
        self.interval = self.packet_length / self.rate
        self.jitter = float(jitter)
        self.rng = rng

    def _schedule_next(self) -> None:
        if self._exhausted():
            return
        self._emit(self.packet_length)
        gap = self.interval
        if self.jitter > 0 and self.rng is not None:
            gap *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        self.sim.call_after(max(gap, 0.0), self._schedule_next)


class BulkSource(Source):
    """Dumps ``max_packets`` fixed-length packets at ``start_time``.

    Models a greedy, always-backlogged flow (the paper's fairness
    theorems quantify over intervals where flows are *backlogged*; a
    bulk source keeps its flow backlogged for the whole measurement
    window).
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: Hashable,
        ingress: Ingress,
        packet_length: int,
        n_packets: int,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(
            sim, flow_id, ingress, start_time, stop_time=None, max_packets=n_packets
        )
        self.packet_length = int(packet_length)
        self.n_packets = int(n_packets)

    def _schedule_next(self) -> None:
        for _ in range(self.n_packets):
            if self._emit(self.packet_length) is None:
                break


class PacedWindowSource(Source):
    """Keeps at most ``window`` packets queued at the ingress link.

    A closed-loop greedy source: each departure of one of its packets
    triggers a refill. Useful for long Figure-3-style runs where dumping
    half a million packets up front would be wasteful. Attach
    :meth:`on_departure` to the link's departure hooks.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: Hashable,
        ingress: Ingress,
        packet_length: int,
        window: int = 16,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        max_packets: Optional[int] = None,
    ) -> None:
        super().__init__(sim, flow_id, ingress, start_time, stop_time, max_packets)
        self.packet_length = int(packet_length)
        self.window = int(window)
        self._in_flight = 0

    def _schedule_next(self) -> None:
        while self._in_flight < self.window and not self._exhausted():
            if self._emit(self.packet_length) is None:
                break
            self._in_flight += 1

    def on_departure(self, packet: Packet, now: float) -> None:
        """Departure hook: refill the window when our packets leave."""
        if packet.flow != self.flow_id:
            return
        self._in_flight -= 1
        if self._started:
            self._schedule_next()
