"""Synthetic MPEG VBR video source.

The paper's Figure 1 experiment transmits "an MPEG compressed VBR video
sequence with average rate 1.21 Mb/s using 50 byte packets", derived
from a digitized episode of *Frasier*. That trace is proprietary; we
substitute a synthetic MPEG model that preserves the properties the
experiment depends on (documented in DESIGN.md §3):

* the target mean bit rate;
* the I/B/P group-of-pictures frame-size structure (large periodic I
  frames, small B frames) giving sub-second burstiness;
* slow lognormal AR(1) scene-level modulation giving the
  multiple-time-scale rate variation Section 1.1 emphasizes;
* fixed small packetization (50-byte cells), emitted back-to-back at
  frame boundaries.

Frame size model: ``size = base * type_multiplier * scene_factor *
lognormal_noise`` where the scene factor follows an AR(1) process in log
space. ``base`` is calibrated so the long-run mean rate hits
``mean_rate`` exactly in expectation.
"""

from __future__ import annotations

import math
import random
from typing import Hashable, List, Optional

from repro.simulation.engine import Simulator
from repro.traffic.base import Ingress, Source

#: Classic MPEG-1 GOP pattern (12 frames, IBBPBBPBBPBB).
DEFAULT_GOP = "IBBPBBPBBPBB"

#: Relative frame sizes; roughly I : P : B = 5 : 2.5 : 1, as commonly
#: measured for entertainment content.
TYPE_MULTIPLIERS = {"I": 5.0, "P": 2.5, "B": 1.0}


class VBRVideoSource(Source):
    """MPEG-like VBR source with GOP structure and scene correlation."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: Hashable,
        ingress: Ingress,
        mean_rate: float,
        rng: random.Random,
        packet_length: int = 50 * 8,
        frame_rate: float = 30.0,
        gop: str = DEFAULT_GOP,
        scene_correlation: float = 0.98,
        scene_sigma: float = 0.25,
        noise_sigma: float = 0.15,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        max_packets: Optional[int] = None,
    ) -> None:
        super().__init__(sim, flow_id, ingress, start_time, stop_time, max_packets)
        if mean_rate <= 0 or frame_rate <= 0:
            raise ValueError("mean_rate and frame_rate must be positive")
        if not gop or any(c not in TYPE_MULTIPLIERS for c in gop):
            raise ValueError(f"GOP pattern must use letters I/P/B, got {gop!r}")
        self.mean_rate = float(mean_rate)
        self.packet_length = int(packet_length)
        self.frame_rate = float(frame_rate)
        self.gop = gop
        self.rng = rng
        self.scene_correlation = float(scene_correlation)
        # AR(1) in log space: x' = a x + sqrt(1-a^2) * N(0, sigma).
        self._scene_log = 0.0
        self._scene_sigma = float(scene_sigma)
        self._noise_sigma = float(noise_sigma)
        self._frame_index = 0
        # Calibrate base so E[frame bits] * frame_rate == mean_rate.
        mean_multiplier = sum(TYPE_MULTIPLIERS[c] for c in gop) / len(gop)
        # E[lognormal(0, s)] = exp(s^2 / 2) for both factors.
        bias = math.exp(self._scene_sigma**2 / 2) * math.exp(self._noise_sigma**2 / 2)
        self._base_frame_bits = mean_rate / frame_rate / mean_multiplier / bias
        self.frames_sent = 0

    # ------------------------------------------------------------------
    def next_frame_bits(self) -> int:
        """Draw the next frame's size in bits (advances the model)."""
        ftype = self.gop[self._frame_index % len(self.gop)]
        self._frame_index += 1
        a = self.scene_correlation
        self._scene_log = a * self._scene_log + math.sqrt(
            max(0.0, 1 - a * a)
        ) * self.rng.gauss(0.0, self._scene_sigma)
        noise = self.rng.gauss(0.0, self._noise_sigma)
        size = (
            self._base_frame_bits
            * TYPE_MULTIPLIERS[ftype]
            * math.exp(self._scene_log)
            * math.exp(noise)
        )
        return max(self.packet_length, int(size))

    def _schedule_next(self) -> None:
        if self._exhausted():
            return
        frame_bits = self.next_frame_bits()
        n_packets = max(1, int(round(frame_bits / self.packet_length)))
        for _ in range(n_packets):
            if self._emit(self.packet_length) is None:
                return
        self.frames_sent += 1
        self.sim.call_after(1.0 / self.frame_rate, self._schedule_next)

    # ------------------------------------------------------------------
    def offline_trace(self, duration: float) -> List[tuple]:
        """Generate an offline ``(time, length_bits)`` packet trace.

        Used by :func:`repro.servers.residual.residual_from_demand` to
        build an explicit residual-capacity profile without running the
        simulator. Draws from this source's RNG (advances its state).
        """
        trace: List[tuple] = []
        t = 0.0
        frame_gap = 1.0 / self.frame_rate
        while t < duration:
            frame_bits = self.next_frame_bits()
            n_packets = max(1, int(round(frame_bits / self.packet_length)))
            for _ in range(n_packets):
                trace.append((t, self.packet_length))
            t += frame_gap
        return trace
