"""Poisson and on-off sources (Figure 2(b)'s workload)."""

from __future__ import annotations

import random
from typing import Hashable, Optional

from repro.simulation.engine import Simulator
from repro.traffic.base import Ingress, Source


class PoissonSource(Source):
    """Fixed-length packets with exponential inter-arrival times.

    ``rate`` is the average bit rate; the arrival intensity is
    ``rate / packet_length`` packets per second.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: Hashable,
        ingress: Ingress,
        rate: float,
        packet_length: int,
        rng: random.Random,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        max_packets: Optional[int] = None,
    ) -> None:
        super().__init__(sim, flow_id, ingress, start_time, stop_time, max_packets)
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.packet_length = int(packet_length)
        self.intensity = self.rate / self.packet_length  # packets / s
        self.rng = rng

    def _begin(self) -> None:
        # First arrival is itself exponentially distributed.
        self.sim.call_after(self.rng.expovariate(self.intensity), self._schedule_next)

    def _schedule_next(self) -> None:
        if self._exhausted():
            return
        self._emit(self.packet_length)
        self.sim.call_after(self.rng.expovariate(self.intensity), self._schedule_next)


class OnOffSource(Source):
    """Exponential on/off bursts; CBR at ``peak_rate`` while on.

    The long-run average rate is
    ``peak_rate * mean_on / (mean_on + mean_off)``.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: Hashable,
        ingress: Ingress,
        peak_rate: float,
        packet_length: int,
        mean_on: float,
        mean_off: float,
        rng: random.Random,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        max_packets: Optional[int] = None,
    ) -> None:
        super().__init__(sim, flow_id, ingress, start_time, stop_time, max_packets)
        if peak_rate <= 0 or mean_on <= 0 or mean_off <= 0:
            raise ValueError("peak_rate, mean_on, mean_off must be positive")
        self.peak_rate = float(peak_rate)
        self.packet_length = int(packet_length)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self.rng = rng
        self._on_until = 0.0

    @property
    def average_rate(self) -> float:
        return self.peak_rate * self.mean_on / (self.mean_on + self.mean_off)

    def _begin(self) -> None:
        self._start_burst()

    def _start_burst(self) -> None:
        if self._exhausted():
            return
        self._on_until = self.sim.now + self.rng.expovariate(1.0 / self.mean_on)
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self._exhausted():
            return
        if self.sim.now >= self._on_until:
            self.sim.call_after(self.rng.expovariate(1.0 / self.mean_off), self._start_burst)
            return
        self._emit(self.packet_length)
        self.sim.call_after(self.packet_length / self.peak_rate, self._schedule_next)
