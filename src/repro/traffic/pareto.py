"""Pareto on-off source: heavy-tailed bursts, self-similar aggregates.

Mid-90s measurement work (Leland et al., Paxson & Floyd) showed LAN/WAN
traffic is self-similar; superposing on-off sources whose on/off
periods are Pareto with 1 < α < 2 reproduces that long-range
dependence. Including it lets the fairness/delay experiments be rerun
under realistic burstiness — SFQ's Theorem 1 makes no traffic
assumptions, and the property suite exercises exactly that.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional

from repro.simulation.engine import Simulator
from repro.traffic.base import Ingress, Source


def pareto_sample(rng: random.Random, alpha: float, minimum: float) -> float:
    """Draw from a Pareto(alpha) with the given minimum (scale)."""
    # Inverse CDF: x = minimum / U^(1/alpha).
    u = 1.0 - rng.random()  # (0, 1]
    return minimum / (u ** (1.0 / alpha))


class ParetoOnOffSource(Source):
    """CBR at ``peak_rate`` during Pareto-distributed on periods,
    silent during Pareto-distributed off periods.

    With shape ``alpha`` in (1, 2) the on/off periods have finite mean
    but infinite variance — the self-similarity regime. Mean on/off
    durations are ``alpha/(alpha-1) * minimum``.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: Hashable,
        ingress: Ingress,
        peak_rate: float,
        packet_length: int,
        rng: random.Random,
        alpha: float = 1.5,
        min_on: float = 0.1,
        min_off: float = 0.1,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        max_packets: Optional[int] = None,
    ) -> None:
        super().__init__(sim, flow_id, ingress, start_time, stop_time, max_packets)
        if peak_rate <= 0:
            raise ValueError(f"peak_rate must be positive, got {peak_rate}")
        if alpha <= 1.0:
            raise ValueError(f"alpha must exceed 1 (finite mean), got {alpha}")
        if min_on <= 0 or min_off <= 0:
            raise ValueError("min_on and min_off must be positive")
        self.peak_rate = float(peak_rate)
        self.packet_length = int(packet_length)
        self.alpha = float(alpha)
        self.min_on = float(min_on)
        self.min_off = float(min_off)
        self.rng = rng
        self._on_until = 0.0

    @property
    def mean_on(self) -> float:
        return self.alpha / (self.alpha - 1.0) * self.min_on

    @property
    def mean_off(self) -> float:
        return self.alpha / (self.alpha - 1.0) * self.min_off

    @property
    def average_rate(self) -> float:
        return self.peak_rate * self.mean_on / (self.mean_on + self.mean_off)

    def _begin(self) -> None:
        self._start_burst()

    def _start_burst(self) -> None:
        if self._exhausted():
            return
        self._on_until = self.sim.now + pareto_sample(self.rng, self.alpha, self.min_on)
        self._tick()

    def _schedule_next(self) -> None:  # pragma: no cover - via _begin
        self._tick()

    def _tick(self) -> None:
        if self._exhausted():
            return
        if self.sim.now >= self._on_until:
            off = pareto_sample(self.rng, self.alpha, self.min_off)
            self.sim.call_after(off, self._start_burst)
            return
        self._emit(self.packet_length)
        self.sim.call_after(self.packet_length / self.peak_rate, self._tick)
