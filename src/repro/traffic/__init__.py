"""Traffic sources: CBR/bulk, Poisson, on-off, MPEG VBR, traces, shaping."""

from repro.traffic.base import Ingress, Source
from repro.traffic.batch import (
    ArrivalTimeline,
    FleetTimeline,
    FlowArrivals,
    cbr_fleet_times,
    cbr_times,
    merge_arrivals,
    poisson_times,
    timeline_from_specs,
)
from repro.traffic.cbr import BulkSource, CBRSource, PacedWindowSource
from repro.traffic.leaky_bucket import LeakyBucketShaper, conforms
from repro.traffic.pareto import ParetoOnOffSource, pareto_sample
from repro.traffic.poisson import OnOffSource, PoissonSource
from repro.traffic.trace import TraceSource
from repro.traffic.tracefile import load_trace, record_source, save_trace
from repro.traffic.vbr_video import DEFAULT_GOP, VBRVideoSource

__all__ = [
    "Source",
    "Ingress",
    "CBRSource",
    "BulkSource",
    "PacedWindowSource",
    "PoissonSource",
    "OnOffSource",
    "ParetoOnOffSource",
    "pareto_sample",
    "VBRVideoSource",
    "DEFAULT_GOP",
    "TraceSource",
    "save_trace",
    "load_trace",
    "record_source",
    "LeakyBucketShaper",
    "conforms",
    # vectorized batch arrival API (repro.traffic.batch)
    "ArrivalTimeline",
    "FleetTimeline",
    "FlowArrivals",
    "cbr_times",
    "cbr_fleet_times",
    "poisson_times",
    "merge_arrivals",
    "timeline_from_specs",
]
