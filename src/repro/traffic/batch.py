"""Vectorized batch arrival generation (the million-flow traffic path).

The classic sources in this package (:class:`~repro.traffic.cbr.CBRSource`,
:class:`~repro.traffic.poisson.PoissonSource`) schedule **one engine
timer per packet**: fine for the paper's 2–8 flow figures, ruinous at
the 10^6-flow scale the hierarchical link-sharing story (§4) implies —
the heap does O(log N) work per generated packet before the scheduler
even sees it.

This module splits generation from delivery:

1. **Generate** arrival *times* as whole arrays up front —
   :func:`cbr_times` / :func:`poisson_times` per flow, or
   :func:`cbr_fleet_times` for an entire fleet of CBR flows in one
   broadcasted numpy expression;
2. **Merge** per-flow arrays into one global time-ordered batch
   (:func:`merge_arrivals` — numpy stable argsort when available, a
   stable Python sort otherwise, with identical output either way);
3. **Deliver** through an :class:`ArrivalTimeline`, an engine
   :class:`~repro.simulation.engine.ArrivalStream`: the run loop merges
   the timeline with its timer heap, so admission costs O(1) heap work
   per packet. The timeline converts its arrays to plain Python floats
   chunk-by-chunk (``.tolist()``), keeping numpy scalar boxing off the
   per-packet path.

Determinism: every function here is a pure function of its arguments
(randomness enters only through an explicit ``random.Random``), times
are computed with the same float64 expressions on both the numpy and
the pure-Python paths, and the merge is stable — so traces are
identical across machines, ``--jobs`` counts, and numpy presence.
"""

from __future__ import annotations

import itertools
import random
from array import array
from dataclasses import dataclass, field
from math import inf
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

try:  # numpy is an optional accelerator, never a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None  # type: ignore[assignment]

from repro.core.packet import Packet
from repro.traffic.base import Ingress

__all__ = [
    "ArrivalTimeline",
    "FleetTimeline",
    "FlowArrivals",
    "cbr_times",
    "cbr_fleet_times",
    "merge_arrivals",
    "poisson_times",
    "timeline_from_specs",
]


def cbr_times(
    rate: float,
    packet_length: int,
    n_packets: int,
    start_time: float = 0.0,
) -> Sequence[float]:
    """Arrival times of a constant-bit-rate flow, as one array.

    Packet ``k`` arrives at ``start_time + k * (packet_length / rate)``
    — the same canonical float64 expression on both paths, so the numpy
    and pure-Python results are bit-identical.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if n_packets < 0:
        raise ValueError(f"n_packets must be >= 0, got {n_packets}")
    interval = packet_length / rate
    if _np is not None:
        return start_time + _np.arange(n_packets, dtype=_np.float64) * interval
    return [start_time + k * interval for k in range(n_packets)]


def poisson_times(
    rng: random.Random,
    rate: float,
    packet_length: int,
    n_packets: int,
    start_time: float = 0.0,
) -> Sequence[float]:
    """Arrival times of a Poisson flow, as one array.

    Draws ``n_packets`` exponential gaps from ``rng`` (consuming exactly
    ``n_packets`` variates, like :class:`~repro.traffic.poisson.
    PoissonSource` would over the same packets) and accumulates them in
    Python — the canonical cumulative sum is defined by sequential
    addition, not a pairwise/numpy reduction, so results never depend on
    numpy's summation order.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if n_packets < 0:
        raise ValueError(f"n_packets must be >= 0, got {n_packets}")
    intensity = rate / packet_length  # packets per second
    gaps = (rng.expovariate(intensity) for _ in range(n_packets))
    return [start_time + t for t in itertools.accumulate(gaps)]


def cbr_fleet_times(
    n_flows: int,
    rate: float,
    packet_length: int,
    packets_per_flow: int,
    start_time: float = 0.0,
    stagger: Optional[float] = None,
) -> Tuple[Sequence[float], Sequence[int]]:
    """Arrival times for a whole fleet of identical CBR flows at once.

    Flow ``i`` (0-based) is phase-shifted by ``i * stagger`` (default:
    ``interval / n_flows``, spreading the fleet evenly across one packet
    interval) and emits ``packets_per_flow`` packets at ``rate``.
    Returns ``(times, flow_indices)`` sorted by time — with the default
    stagger no two arrivals coincide, and the broadcasted numpy path is
    a transpose-reshape away from sorted order, so fleet construction is
    O(N) with no per-packet Python work.
    """
    if n_flows <= 0:
        raise ValueError(f"n_flows must be positive, got {n_flows}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if packets_per_flow < 0:
        raise ValueError(f"packets_per_flow must be >= 0, got {packets_per_flow}")
    interval = packet_length / rate
    if stagger is None:
        stagger = interval / n_flows
    if _np is not None:
        flow_offsets = _np.arange(n_flows, dtype=_np.float64) * stagger
        pkt_offsets = _np.arange(packets_per_flow, dtype=_np.float64) * interval
        # grid[k, i] = time of flow i's k-th packet; with 0 <= stagger*
        # (n_flows-1) <= interval each row is globally later than the
        # previous, and within a row times ascend with i — so C-order
        # reshape of the (k, i) grid is already time-sorted.
        grid = start_time + (pkt_offsets[:, None] + flow_offsets[None, :])
        times = grid.reshape(-1)
        flows = _np.tile(
            _np.arange(n_flows, dtype=_np.int64), packets_per_flow
        )
        if stagger * max(n_flows - 1, 0) > interval:
            order = _np.argsort(times, kind="stable")
            times = times[order]
            flows = flows[order]
        return times, flows
    entries = [
        (start_time + k * interval + i * stagger, i)
        for k in range(packets_per_flow)
        for i in range(n_flows)
    ]
    entries.sort(key=lambda e: e[0])
    return [e[0] for e in entries], [e[1] for e in entries]


@dataclass(slots=True)
class FlowArrivals:
    """One flow's precomputed arrival batch (input to the merge)."""

    flow_id: Hashable
    times: Sequence[float]
    length: int
    rate: Optional[float] = None
    #: Per-arrival length overrides (same shape as ``times``); when
    #: None, every packet is ``length`` long.
    lengths: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        if self.lengths is not None and len(self.lengths) != len(self.times):
            raise ValueError(
                f"flow {self.flow_id!r}: lengths ({len(self.lengths)}) and "
                f"times ({len(self.times)}) differ in shape"
            )


def merge_arrivals(
    specs: Sequence[FlowArrivals],
) -> Tuple[Sequence[float], Sequence[int]]:
    """Merge per-flow arrival arrays into one time-ordered batch.

    Returns ``(times, spec_indices)`` where ``spec_indices[j]`` names
    the spec whose packet arrives at ``times[j]``. The sort is stable
    with concatenation order (spec order) breaking time ties, on both
    the numpy and the pure-Python path — required for cross-environment
    trace identity.
    """
    if _np is not None:
        times = _np.concatenate(
            [_np.asarray(s.times, dtype=_np.float64) for s in specs]
        ) if specs else _np.empty(0, dtype=_np.float64)
        owners = _np.concatenate(
            [_np.full(len(s.times), i, dtype=_np.int64) for i, s in enumerate(specs)]
        ) if specs else _np.empty(0, dtype=_np.int64)
        order = _np.argsort(times, kind="stable")
        return times[order], owners[order]
    flat: List[Tuple[float, int]] = []
    for i, s in enumerate(specs):
        flat.extend((float(t), i) for t in s.times)
    flat.sort(key=lambda e: e[0])  # stable: ties keep spec order
    return [e[0] for e in flat], [e[1] for e in flat]


@dataclass(slots=True)
class _ChunkState:
    """Mutable cursor over the materialized chunk (internal)."""

    times: List[float] = field(default_factory=list)
    owners: List[int] = field(default_factory=list)
    pos: int = 0


class ArrivalTimeline:
    """Engine arrival stream over a merged batch of precomputed arrivals.

    Implements the :class:`~repro.simulation.engine.ArrivalStream`
    protocol (``next_time`` + ``fire()``): attach with
    ``sim.attach_stream(timeline)`` and the run loop delivers one packet
    per ``fire()`` in global time order at O(1) heap cost.

    The backing ``times``/``owners`` arrays may be numpy arrays or
    plain sequences; they are materialized into Python floats/ints in
    ``chunk`` -sized slices via ``.tolist()`` so the per-packet path
    never touches numpy scalars. Per-flow sequence numbers are assigned
    at delivery time in arrival order, matching what per-packet sources
    would have produced.
    """

    __slots__ = (
        "specs",
        "_times",
        "_owners",
        "_chunk",
        "_state",
        "_base",
        "_seqnos",
        "_delivered",
        "_ingress",
        "next_time",
        "packets_sent",
        "bits_sent",
    )

    def __init__(
        self,
        ingress: Ingress,
        specs: Sequence[FlowArrivals],
        times: Sequence[float],
        owners: Sequence[int],
        chunk: int = 4096,
    ) -> None:
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self.specs = list(specs)
        self._times = times
        self._owners = owners
        self._chunk = int(chunk)
        self._state = _ChunkState()
        self._base = 0  # global index of the current chunk's first entry
        self._seqnos: Dict[Hashable, int] = {}
        #: Per-spec delivered count — the index into ``spec.lengths``
        #: (distinct from the per-flow seqno: two specs may share a
        #: flow id, e.g. an on-off flow built as one spec per burst).
        self._delivered = [0] * len(self.specs)
        self._ingress = ingress
        self.packets_sent = 0
        self.bits_sent = 0
        #: Absolute time of the next arrival; math.inf when exhausted.
        self.next_time = inf
        self._load_chunk()

    def _load_chunk(self) -> None:
        state = self._state
        self._base += state.pos
        lo, hi = self._base, self._base + self._chunk
        sl_t = self._times[lo:hi]
        sl_o = self._owners[lo:hi]
        # .tolist() on a numpy slice yields plain floats/ints in one C
        # pass; plain sequences are just copied.
        state.times = sl_t.tolist() if hasattr(sl_t, "tolist") else list(sl_t)
        state.owners = sl_o.tolist() if hasattr(sl_o, "tolist") else list(sl_o)
        state.pos = 0
        self.next_time = state.times[0] if state.times else inf

    def fire(self) -> None:
        """Deliver the arrival at ``next_time`` and advance."""
        state = self._state
        pos = state.pos
        owner = state.owners[pos]
        spec = self.specs[owner]
        flow_id = spec.flow_id
        seqno = self._seqnos.get(flow_id, 0)
        self._seqnos[flow_id] = seqno + 1
        ordinal = self._delivered[owner]
        self._delivered[owner] = ordinal + 1
        length = spec.lengths[ordinal] if spec.lengths is not None else spec.length
        packet = Packet(
            flow_id,
            length,
            arrival=state.times[pos],
            seqno=seqno,
            rate=spec.rate,
        )
        self.packets_sent += 1
        self.bits_sent += length
        pos += 1
        state.pos = pos
        if pos < len(state.times):
            self.next_time = state.times[pos]
        else:
            self._load_chunk()
        self._ingress(packet)

    @property
    def remaining(self) -> int:
        """Arrivals not yet delivered."""
        return len(self._times) - self._base - self._state.pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrivalTimeline(sent={self.packets_sent}, "
            f"remaining={self.remaining}, next={self.next_time:.9g})"
        )


class FleetTimeline:
    """Arrival stream for a dense-int fleet (no per-flow spec objects).

    The spec-based :class:`ArrivalTimeline` carries one
    :class:`FlowArrivals` per flow — reasonable at hundreds of flows,
    wasteful at 10^6 where :func:`cbr_fleet_times` already yields
    ``(times, flow_indices)`` with flow indices that *are* the flow ids.
    This stream consumes those two arrays directly: constant packet
    length, per-flow sequence numbers kept in one ``array('q')`` column
    indexed by flow index (the same struct-of-arrays discipline as
    :class:`repro.core.slab.FlowSlab`).

    ``flow_ids`` optionally maps index → external flow id (default: the
    index itself, matching dense-int registration on the scheduler).
    """

    __slots__ = (
        "_times",
        "_flows",
        "_ids",
        "_length",
        "_rate",
        "_chunk",
        "_state",
        "_base",
        "_seqnos",
        "_ingress",
        "next_time",
        "packets_sent",
        "bits_sent",
    )

    def __init__(
        self,
        ingress: Ingress,
        times: Sequence[float],
        flow_indices: Sequence[int],
        packet_length: int,
        rate: Optional[float] = None,
        flow_ids: Optional[Sequence[Hashable]] = None,
        n_flows: Optional[int] = None,
        chunk: int = 8192,
    ) -> None:
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        if len(times) != len(flow_indices):
            raise ValueError(
                f"times ({len(times)}) and flow_indices "
                f"({len(flow_indices)}) differ in shape"
            )
        self._times = times
        self._flows = flow_indices
        self._ids = flow_ids
        self._length = int(packet_length)
        self._rate = rate
        self._chunk = int(chunk)
        self._state = _ChunkState()
        self._base = 0
        if n_flows is None:
            if flow_ids is not None:
                n_flows = len(flow_ids)
            elif len(flow_indices):
                n_flows = int(max(flow_indices)) + 1
            else:
                n_flows = 0
        self._seqnos = array("q", bytes(8 * n_flows))  # zero-filled
        self._ingress = ingress
        self.packets_sent = 0
        self.bits_sent = 0
        #: Absolute time of the next arrival; math.inf when exhausted.
        self.next_time = inf
        self._load_chunk()

    def _load_chunk(self) -> None:
        state = self._state
        self._base += state.pos
        lo, hi = self._base, self._base + self._chunk
        sl_t = self._times[lo:hi]
        sl_f = self._flows[lo:hi]
        state.times = sl_t.tolist() if hasattr(sl_t, "tolist") else list(sl_t)
        state.owners = sl_f.tolist() if hasattr(sl_f, "tolist") else list(sl_f)
        state.pos = 0
        self.next_time = state.times[0] if state.times else inf

    def fire(self) -> None:
        """Deliver the arrival at ``next_time`` and advance."""
        state = self._state
        pos = state.pos
        idx = state.owners[pos]
        seqnos = self._seqnos
        seqno = seqnos[idx]
        seqnos[idx] = seqno + 1
        packet = Packet(
            self._ids[idx] if self._ids is not None else idx,
            self._length,
            arrival=state.times[pos],
            seqno=seqno,
            rate=self._rate,
        )
        self.packets_sent += 1
        self.bits_sent += self._length
        pos += 1
        state.pos = pos
        if pos < len(state.times):
            self.next_time = state.times[pos]
        else:
            self._load_chunk()
        self._ingress(packet)

    @property
    def remaining(self) -> int:
        """Arrivals not yet delivered."""
        return len(self._times) - self._base - self._state.pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FleetTimeline(sent={self.packets_sent}, "
            f"remaining={self.remaining}, next={self.next_time:.9g})"
        )


def timeline_from_specs(
    ingress: Ingress,
    specs: Sequence[FlowArrivals],
    chunk: int = 4096,
) -> ArrivalTimeline:
    """Merge ``specs`` and wrap them in an :class:`ArrivalTimeline`."""
    times, owners = merge_arrivals(specs)
    return ArrivalTimeline(ingress, specs, times, owners, chunk=chunk)
