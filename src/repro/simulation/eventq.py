"""Pluggable event-queue backends for the simulation engine.

The :class:`~repro.simulation.engine.Simulator` does not own a heap any
more — it owns an *event queue*, an object storing the pending-timer
tuples described in :mod:`repro.simulation.engine` (shapes
``(time, priority, seq, event)`` and
``(time, priority, seq, None, callback, args)``) and yielding them in
``(time, priority, seq)`` order. Two backends implement that contract:

:class:`BinaryHeapQueue`
    The seed implementation: one ``heapq`` tuple heap. O(log N) per
    push/pop, unbeatable constants at small N, and the default.

:class:`CalendarQueue`
    A calendar/ladder queue (Brown 1988; Tang & Wong's ladder refinement
    for the far future). The current "year" ``[epoch, epoch + nbuck *
    width)`` is an array of buckets, each a *tiny* tuple heap; events
    beyond the year go to an unsorted-by-bucket *overflow* heap that is
    only touched when the year drains. Push and pop are O(1) amortized
    when the bucket width tracks the inter-event gap, which a
    deterministic, load-driven resize policy maintains (see
    :meth:`CalendarQueue._rebuild`). Intra-bucket ordering is the exact
    ``(time, priority, seq)`` tuple comparison of the heap backend and
    ``seq`` is globally unique, so the pop order of the two backends is
    identical for any push sequence — the property the randomized parity
    test in ``tests/test_eventq.py`` and the trace-equivalence suite
    enforce.

Why the run loops live here
---------------------------
Each backend carries its own ``drain(sim, limit)`` — the stream-free,
unlimited-budget hot loop — with the container operations inlined.
Keeping the inlined ``heapq`` calls *in this module* is what makes the
PERF002 lint rule (no direct heap surgery on the simulator event queue
outside ``repro.simulation.eventq``) enforceable: everything outside
this file goes through the queue interface.

Selection
---------
``Simulator(event_queue=...)`` takes a backend name, an instance, or a
factory; :func:`set_default_event_queue` changes the process-wide
default; the ``REPRO_EVENT_QUEUE`` environment variable (read at
``Simulator`` construction time) does the same from the outside, e.g.
``REPRO_EVENT_QUEUE=calendar python -m repro run figure1``. Explicit
argument beats :func:`set_default_event_queue` beats the environment
variable beats the built-in default (``"heap"``).

An optional compiled extension of this module may be built with
``scripts/build_compiled.py`` (mypyc); the import system then prefers
the shared object over this source file transparently. Nothing in the
repo requires the compiled form — it is a pure, byte-identical speedup.
"""

from __future__ import annotations

import os
from functools import partial
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple, Union

Entry = Tuple[Any, ...]

__all__ = [
    "BinaryHeapQueue",
    "CalendarQueue",
    "EVENT_QUEUES",
    "make_event_queue",
    "set_default_event_queue",
    "default_event_queue_name",
]


class BinaryHeapQueue:
    """The seed event queue: a single ``heapq`` tuple heap."""

    __slots__ = ("_heap", "push")

    name = "heap"

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        #: Bound C-level push (``partial(heappush, heap)``) — saves a
        #: Python-level frame on the hottest call in the engine.
        self.push: Callable[[Entry], None] = partial(heappush, self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def pop(self) -> Entry:
        return heappop(self._heap)

    def peek(self) -> Optional[Entry]:
        """Head entry (cancelled or not) without removing it."""
        heap = self._heap
        return heap[0] if heap else None

    def peek_live(self) -> Optional[Entry]:
        """Head entry, discarding cancelled entries in place."""
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[3]
            if event is not None and event.cancelled:
                heappop(heap)
                continue
            return head
        return None

    def drain(self, sim: Any, limit: float) -> int:  # lint: hot
        """Fire events in order while ``time <= limit`` (no budget).

        The engine's stream-free, unbudgeted hot loop: hoists the heap
        and ``heappop`` into locals and skips cancelled entries in
        place. ``sim._now`` is advanced per event;
        ``sim._events_processed`` is settled once on exit (including
        the exceptional one — the failing event counts as fired, as in
        the seed loop).
        """
        heap = self._heap
        pop = heappop
        fired = 0
        try:
            while heap and not sim._stopped:
                entry = heap[0]
                event = entry[3]
                if event is not None and event.cancelled:
                    pop(heap)
                    continue
                time = entry[0]
                if time > limit:
                    break
                pop(heap)
                sim._now = time
                fired += 1
                if event is None:
                    entry[4](*entry[5])
                else:
                    event._fire()
        finally:
            sim._events_processed += fired
        return fired


class CalendarQueue:
    """Calendar queue with an overflow heap for the far future.

    The year is ``[epoch, year_end)`` split into ``nbuck`` buckets of
    ``width`` seconds; ``_cur`` is a monotone scan cursor that is never
    ahead of the earliest in-year entry (pushes below it pull it back).
    Entries at or past ``year_end`` wait in ``_overflow`` (a plain
    heap) until a rollover re-anchors the year at the overflow head.

    All resize decisions are pure functions of the queue's own state
    (entry counts and stored timestamps), so two runs that push/pop the
    same sequence make the same decisions — determinism does not depend
    on the bucket layout, but keeping the layout reproducible makes
    performance reproducible too.
    """

    __slots__ = (
        "_buckets",
        "_nbuck",
        "_width",
        "_inv",
        "_epoch",
        "_year_end",
        "_cur",
        "_year_size",
        "_overflow",
        "_size",
        "_thin_rollovers",
    )

    name = "calendar"

    #: Initial/minimum bucket count (power of two).
    MIN_BUCKETS = 256
    #: Upper bound on the bucket array (memory guard).
    MAX_BUCKETS = 1 << 20
    #: Grow/re-estimate when the year holds more than this many entries
    #: per bucket on average.
    OCCUPANCY_LIMIT = 2
    #: Consecutive near-empty rollovers before the width is doubled.
    THIN_ROLLOVER_LIMIT = 8

    def __init__(self, width: float = 1.0, buckets: int = MIN_BUCKETS) -> None:
        if not width > 0.0:
            raise ValueError(f"bucket width must be positive, got {width}")
        n = 1
        while n < max(buckets, 1):
            n <<= 1
        self._nbuck = n
        self._buckets: List[List[Entry]] = [[] for _ in range(n)]
        self._width = float(width)
        self._inv = 1.0 / self._width
        self._epoch = 0.0
        self._year_end = self._epoch + n * self._width
        self._cur = 0
        self._year_size = 0
        self._overflow: List[Entry] = []
        self._size = 0
        self._thin_rollovers = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def _bucket_index(self, time: float) -> int:
        """Bucket index for an in-year timestamp.

        Clamped at both ends: times before ``epoch`` (legal — a push at
        ``now`` can precede a rollover-chosen epoch) land in bucket 0,
        and float rounding at the year boundary lands in the last
        bucket. Clamping is monotone, so bucket order still follows
        time order — the invariant the pop scan relies on.
        """
        offset = (time - self._epoch) * self._inv
        if offset > 0.0:  # NaN-safe: inf-inf compares False, falls to 0
            index = int(offset)
            nbuck = self._nbuck
            return index if index < nbuck else nbuck - 1
        return 0

    def push(self, entry: Entry) -> None:
        time = entry[0]
        if time < self._year_end:
            j = self._bucket_index(time)
            heappush(self._buckets[j], entry)
            if j < self._cur:
                self._cur = j
            self._year_size += 1
            self._size += 1
            if self._year_size > self.OCCUPANCY_LIMIT * self._nbuck:
                self._rebuild()
        else:
            heappush(self._overflow, entry)
            self._size += 1

    def pop(self) -> Entry:
        if not self._size:
            raise IndexError("pop from an empty CalendarQueue")
        if not self._year_size:
            self._rollover()
        buckets = self._buckets
        j = self._cur
        while True:
            b = buckets[j]
            if b:
                self._cur = j
                self._year_size -= 1
                self._size -= 1
                return heappop(b)
            j += 1

    def peek(self) -> Optional[Entry]:
        """Head entry (cancelled or not) without removing it.

        May promote overflow entries into the year (a rollover), which
        rearranges storage but never order.
        """
        if not self._size:
            return None
        if not self._year_size:
            self._rollover()
        buckets = self._buckets
        j = self._cur
        while True:
            b = buckets[j]
            if b:
                self._cur = j
                return b[0]
            j += 1

    def peek_live(self) -> Optional[Entry]:
        """Head entry, discarding cancelled entries in place.

        The :meth:`peek`/:meth:`pop` pair is fused into one scan: this
        runs once per successful ``reserve_inline`` (the link fast
        path), where the extra call frames would show.
        """
        while self._size:
            if not self._year_size:
                self._rollover()
            buckets = self._buckets
            j = self._cur
            while True:
                b = buckets[j]
                if b:
                    break
                j += 1
            self._cur = j
            head = b[0]
            event = head[3]
            if event is not None and event.cancelled:
                heappop(b)
                self._year_size -= 1
                self._size -= 1
                continue
            return head
        return None

    # ------------------------------------------------------------------
    # Year management
    # ------------------------------------------------------------------
    def _rollover(self) -> None:
        """Re-anchor the (empty) year at the overflow head and promote.

        The head entry is always promoted (guaranteeing progress even
        when ``epoch + span`` cannot be represented as a larger float),
        then everything else inside the new year. A rollover that
        promotes almost nothing means the width is far below the actual
        event gaps; after :attr:`THIN_ROLLOVER_LIMIT` consecutive thin
        rollovers the width doubles.
        """
        overflow = self._overflow
        head_time: float = overflow[0][0]
        self._epoch = head_time
        self._year_end = head_time + self._nbuck * self._width
        self._cur = 0
        # Promote the head unconditionally, then the rest of the year.
        entry = heappop(overflow)
        heappush(self._buckets[self._bucket_index(entry[0])], entry)
        promoted = 1
        year_end = self._year_end
        while overflow and overflow[0][0] < year_end:
            entry = heappop(overflow)
            heappush(self._buckets[self._bucket_index(entry[0])], entry)
            promoted += 1
        self._year_size = promoted
        if promoted > self.OCCUPANCY_LIMIT * self._nbuck:
            self._rebuild()
        elif promoted <= 2:
            self._thin_rollovers += 1
            if self._thin_rollovers >= self.THIN_ROLLOVER_LIMIT:
                self._thin_rollovers = 0
                self._width *= 2.0
                self._inv = 1.0 / self._width
                self._year_end = self._epoch + self._nbuck * self._width
                # Newly covered overflow entries join the year lazily at
                # the next rollover; widening now only affects pushes.
        else:
            self._thin_rollovers = 0

    def _rebuild(self) -> None:
        """Re-estimate width/bucket count from the year's own entries.

        Triggered when the year overfills (many entries per bucket).
        The new width is twice the mean gap between the 64 earliest
        distinct timestamps — wide enough that consecutive events
        usually map to nearby buckets, narrow enough that a bucket
        rarely holds more than a couple of entries. Entries the tighter
        year no longer covers are demoted to the overflow heap.
        """
        entries: List[Entry] = []
        for b in self._buckets:
            entries.extend(b)
            del b[:]
        entries.sort()
        count = len(entries)
        sample = entries[: min(64, count)]
        gaps = [
            later[0] - earlier[0]
            for earlier, later in zip(sample, sample[1:])
            if later[0] > earlier[0]
        ]
        if gaps:
            width = 2.0 * (sum(gaps) / len(gaps))
            if width > 0.0 and width != float("inf"):
                self._width = width
                self._inv = 1.0 / width
        nbuck = self._nbuck
        while nbuck * self.OCCUPANCY_LIMIT < count and nbuck < self.MAX_BUCKETS:
            nbuck <<= 1
        if nbuck != self._nbuck:
            self._nbuck = nbuck
            self._buckets = [[] for _ in range(nbuck)]
        self._epoch = entries[0][0] if entries else self._epoch
        self._year_end = self._epoch + nbuck * self._width
        year_end = self._year_end
        year_size = 0
        overflow = self._overflow
        for entry in entries:
            if entry[0] < year_end:
                heappush(self._buckets[self._bucket_index(entry[0])], entry)
                year_size += 1
            else:
                heappush(overflow, entry)
        self._year_size = year_size
        self._cur = 0
        self._thin_rollovers = 0

    # ------------------------------------------------------------------
    # Hot loop
    # ------------------------------------------------------------------
    def drain(self, sim: Any, limit: float) -> int:  # lint: hot
        """Fire events in order while ``time <= limit`` (no budget).

        Same contract as :meth:`BinaryHeapQueue.drain`, with the bucket
        scan inlined. Mutable cursor state (``_cur``, the bucket list)
        is re-read every iteration because callbacks push — and a push
        can pull the cursor back or trigger a rebuild.
        """
        fired = 0
        try:
            while self._size and not sim._stopped:
                if not self._year_size:
                    if self._overflow[0][0] > limit:
                        break
                    self._rollover()
                buckets = self._buckets
                j = self._cur
                while True:
                    b = buckets[j]
                    if b:
                        break
                    j += 1
                entry = b[0]
                event = entry[3]
                if event is not None and event.cancelled:
                    heappop(b)
                    self._cur = j
                    self._year_size -= 1
                    self._size -= 1
                    continue
                time = entry[0]
                if time > limit:
                    self._cur = j
                    break
                heappop(b)
                self._cur = j
                self._year_size -= 1
                self._size -= 1
                sim._now = time
                fired += 1
                if event is None:
                    entry[4](*entry[5])
                else:
                    event._fire()
        finally:
            sim._events_processed += fired
        return fired


EventQueue = Union[BinaryHeapQueue, CalendarQueue]

#: Registry of named backends (the strings accepted by
#: ``Simulator(event_queue=...)``, ``set_default_event_queue`` and the
#: ``REPRO_EVENT_QUEUE`` environment variable).
EVENT_QUEUES: "dict[str, Callable[[], EventQueue]]" = {
    "heap": BinaryHeapQueue,
    "calendar": CalendarQueue,
}

EventQueueSpec = Union[None, str, EventQueue, Callable[[], EventQueue]]

_default_spec: Optional[EventQueueSpec] = None


def set_default_event_queue(spec: EventQueueSpec) -> None:
    """Set the process-wide default backend for new ``Simulator``\\ s.

    ``spec`` is a registry name, a factory callable, or ``None`` to
    fall back to the ``REPRO_EVENT_QUEUE`` environment variable / the
    built-in default. Passing a queue *instance* is rejected — a
    default shared by every simulator would alias their timers.
    """
    if spec is not None and not isinstance(spec, str) and not callable(spec):
        raise TypeError(
            f"default event queue must be a name or factory, got {spec!r}"
        )
    if isinstance(spec, str) and spec not in EVENT_QUEUES:
        raise ValueError(
            f"unknown event queue {spec!r}; known: {sorted(EVENT_QUEUES)}"
        )
    global _default_spec
    _default_spec = spec


def default_event_queue_name() -> str:
    """Name of the backend a plain ``Simulator()`` would get (a
    non-registry factory default reports ``"custom"``)."""
    spec = _default_spec
    if spec is None:
        return os.environ.get("REPRO_EVENT_QUEUE", "heap")
    if isinstance(spec, str):
        return spec
    return getattr(spec, "name", "custom")


def make_event_queue(spec: EventQueueSpec = None) -> EventQueue:
    """Resolve an ``event_queue=`` argument to a fresh queue instance.

    Resolution order for ``None``: :func:`set_default_event_queue`
    value, then ``REPRO_EVENT_QUEUE``, then ``"heap"``.
    """
    if spec is None:
        spec = _default_spec
    if spec is None:
        spec = os.environ.get("REPRO_EVENT_QUEUE", "heap")  # lint: disable=CACHE001  queue backend is result-invariant: the trace-equivalence suite gates byte-identical schedules across queues
    if isinstance(spec, str):
        try:
            factory = EVENT_QUEUES[spec]
        except KeyError:
            raise ValueError(
                f"unknown event queue {spec!r}; known: {sorted(EVENT_QUEUES)}"
            ) from None
        return factory()
    if isinstance(spec, (BinaryHeapQueue, CalendarQueue)):
        return spec
    if callable(spec):
        queue = spec()
        if not hasattr(queue, "drain"):
            raise TypeError(
                f"event queue factory returned {queue!r}, which does not "
                "implement the event-queue interface"
            )
        return queue
    raise TypeError(f"cannot make an event queue from {spec!r}")
