"""Structured packet tracing — opt-in, with zero-cost and sampled tiers.

A tracer collects the (arrival, start-of-service, departure/drop) life
of packets at a server. The analysis layer (:mod:`repro.analysis`)
consumes these records to compute fairness measures, delay statistics
and sequence-number series (Figure 1(b) of the paper plots exactly such
a series).

Tracer protocol
---------------
All tracers implement the same small hot-path surface, driven by
:class:`repro.servers.link.Link`:

``enabled``
    Class-level flag. When False (:class:`NullTracer`) the Link skips
    the tracing calls entirely — tracing disabled costs one attribute
    read per packet.
``on_arrival(flow, seqno, length, time) -> handle``
    Record an arrival; returns an opaque *handle* (or ``None`` to
    decline recording this packet, as :class:`SamplingTracer` does for
    unsampled arrivals). The handle is what the server passes back to
    the ``mark_*`` methods — a :class:`PacketRecord` for
    :class:`Tracer`, an integer row index for :class:`ColumnarTracer`.
``mark_start(handle, time)`` / ``mark_departure(handle, time)`` /
``mark_dropped(handle)``
    Stamp lifecycle milestones on a previously returned handle.

Query surface
-------------
``flows()``, ``for_flow()``, ``departed()`` and ``dropped()`` return
**tuples** — immutable views that do not copy per call the way the old
list-returning API did; treat them as read-only. ``iter_for_flow()``
and ``iter_departed()`` are generator variants for single-pass
consumers, and ``count_for_flow()`` is O(1). ``delays()`` still returns
a fresh list (it is always a transformation, never a view).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple


@dataclass(slots=True)
class PacketRecord:
    """One packet's life at one server.

    Times are simulation seconds; ``None`` marks events that have not
    happened (a dropped packet never departs).
    """

    flow: Hashable
    seqno: int
    length: int
    arrival: float
    start_service: Optional[float] = None
    departure: Optional[float] = None
    dropped: bool = False
    server: Optional[str] = None

    @property
    def delay(self) -> Optional[float]:
        """Queueing + transmission delay at this server, if departed."""
        if self.departure is None:
            return None
        return self.departure - self.arrival

    @property
    def queueing_delay(self) -> Optional[float]:
        """Time spent waiting before service began."""
        if self.start_service is None:
            return None
        return self.start_service - self.arrival


class Tracer:
    """Collects one :class:`PacketRecord` per packet, indexed by flow."""

    __slots__ = ("name", "records", "_by_flow")

    #: Servers skip all tracing work when this is False.
    enabled = True

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.records: List[PacketRecord] = []
        self._by_flow: Dict[Hashable, List[PacketRecord]] = {}

    def add(self, record: PacketRecord) -> PacketRecord:
        """Register an externally built record."""
        self.records.append(record)
        flow_records = self._by_flow.get(record.flow)
        if flow_records is None:
            flow_records = self._by_flow[record.flow] = []
        flow_records.append(record)
        return record

    def on_arrival(
        self, flow: Hashable, seqno: int, length: int, time: float
    ) -> Optional[PacketRecord]:
        """Record an arrival; the returned record is the mark handle.

        Subclasses may return ``None`` to decline recording a packet
        (as :class:`SamplingTracer` does), so the declared return type
        is optional; this base implementation always records.
        """
        return self.add(
            PacketRecord(
                flow=flow, seqno=seqno, length=length, arrival=time, server=self.name
            )
        )

    # ------------------------------------------------------------------
    # Lifecycle marks (handle = the PacketRecord itself)
    # ------------------------------------------------------------------
    def mark_start(self, handle: PacketRecord, time: float) -> None:
        """Stamp start-of-service on a handle from :meth:`on_arrival`."""
        handle.start_service = time

    def mark_departure(self, handle: PacketRecord, time: float) -> None:
        """Stamp departure on a handle from :meth:`on_arrival`."""
        handle.departure = time

    def mark_dropped(self, handle: PacketRecord) -> None:
        """Flag a handle from :meth:`on_arrival` as dropped."""
        handle.dropped = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def flows(self) -> Tuple[Hashable, ...]:
        """Flows with at least one record, in first-arrival order."""
        return tuple(self._by_flow)

    def for_flow(self, flow: Hashable) -> Tuple[PacketRecord, ...]:
        """All records of ``flow`` (read-only view, arrival order)."""
        records = self._by_flow.get(flow)
        return tuple(records) if records is not None else ()

    def iter_for_flow(self, flow: Hashable) -> Iterator[PacketRecord]:
        """Iterate ``flow``'s records without building a container."""
        return iter(self._by_flow.get(flow, ()))

    def count_for_flow(self, flow: Hashable) -> int:
        """Number of records of ``flow`` — O(1)."""
        records = self._by_flow.get(flow)
        return len(records) if records is not None else 0

    def departed(self, flow: Optional[Hashable] = None) -> Tuple[PacketRecord, ...]:
        """Records that completed service (optionally one flow's)."""
        return tuple(self.iter_departed(flow))

    def iter_departed(self, flow: Optional[Hashable] = None) -> Iterator[PacketRecord]:
        """Iterate departed records without building a container."""
        records: Iterable[PacketRecord]
        records = self.records if flow is None else self._by_flow.get(flow, ())
        return (r for r in records if r.departure is not None)

    def dropped(self, flow: Optional[Hashable] = None) -> Tuple[PacketRecord, ...]:
        """Records of dropped packets (optionally one flow's)."""
        records: Iterable[PacketRecord]
        records = self.records if flow is None else self._by_flow.get(flow, ())
        return tuple(r for r in records if r.dropped)

    def delays(self, flow: Optional[Hashable] = None) -> List[float]:
        """Per-packet delays of departed packets, as a fresh list."""
        return [
            r.departure - r.arrival
            for r in self.iter_departed(flow)
            if r.departure is not None
        ]

    def work_in_interval(self, flow: Hashable, t1: float, t2: float) -> int:
        """Aggregate bits of ``flow`` served entirely within ``[t1, t2]``.

        The paper counts a packet as served in an interval if it *starts
        and finishes* service within it (Section 1.2).
        """
        total = 0
        for record in self._by_flow.get(flow, ()):
            if (
                record.start_service is not None
                and record.departure is not None
                and record.start_service >= t1
                and record.departure <= t2
            ):
                total += record.length
        return total

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()
        self._by_flow.clear()

    def __len__(self) -> int:
        return len(self.records)


class NullTracer:
    """Tracing disabled: every operation is a no-op.

    ``enabled`` is False, so a :class:`~repro.servers.link.Link` given a
    NullTracer never calls into it on the per-packet path at all — the
    cost of tracing drops to a single attribute test per packet. The
    query surface is present (and empty) so analysis code degrades
    gracefully rather than crashing.
    """

    __slots__ = ("name", "records")

    enabled = False

    def __init__(self, name: str = "") -> None:
        self.name = name
        #: Always-empty record list (query-surface compatibility).
        self.records: Tuple[PacketRecord, ...] = ()

    def add(self, record: PacketRecord) -> PacketRecord:
        """Ignore an externally built record (returned unchanged)."""
        return record

    def on_arrival(
        self, flow: Hashable, seqno: int, length: int, time: float
    ) -> None:
        """Decline to record; returns ``None`` (no handle)."""
        return None

    def mark_start(self, handle: object, time: float) -> None:
        """No-op."""

    def mark_departure(self, handle: object, time: float) -> None:
        """No-op."""

    def mark_dropped(self, handle: object) -> None:
        """No-op."""

    def flows(self) -> Tuple[Hashable, ...]:
        """Always empty."""
        return ()

    def for_flow(self, flow: Hashable) -> Tuple[PacketRecord, ...]:
        """Always empty."""
        return ()

    def iter_for_flow(self, flow: Hashable) -> Iterator[PacketRecord]:
        """Always empty."""
        return iter(())

    def count_for_flow(self, flow: Hashable) -> int:
        """Always zero."""
        return 0

    def departed(self, flow: Optional[Hashable] = None) -> Tuple[PacketRecord, ...]:
        """Always empty."""
        return ()

    def iter_departed(self, flow: Optional[Hashable] = None) -> Iterator[PacketRecord]:
        """Always empty."""
        return iter(())

    def dropped(self, flow: Optional[Hashable] = None) -> Tuple[PacketRecord, ...]:
        """Always empty."""
        return ()

    def delays(self, flow: Optional[Hashable] = None) -> List[float]:
        """Always empty."""
        return []

    def work_in_interval(self, flow: Hashable, t1: float, t2: float) -> int:
        """Always zero."""
        return 0

    def clear(self) -> None:
        """No-op."""

    def __len__(self) -> int:
        return 0


class SamplingTracer(Tracer):
    """Record every ``period``-th arrival; decline the rest.

    A middle tier between full tracing and :class:`NullTracer`: long
    capacity-planning runs keep a statistically useful packet sample at
    ``1/period`` of full-tracing cost. Unsampled packets get no handle
    (``on_arrival`` returns ``None``), so the server skips their
    ``mark_*`` calls entirely.
    """

    __slots__ = ("period", "arrivals_seen")

    def __init__(self, name: str = "", period: int = 100) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        super().__init__(name)
        self.period = int(period)
        self.arrivals_seen = 0

    def on_arrival(
        self, flow: Hashable, seqno: int, length: int, time: float
    ) -> Optional[PacketRecord]:
        """Record the arrival only if it falls on the sampling grid."""
        seen = self.arrivals_seen
        self.arrivals_seen = seen + 1
        if seen % self.period:
            return None
        return super().on_arrival(flow, seqno, length, time)


class ColumnarTracer:
    """Full-fidelity tracing in columnar (struct-of-arrays) storage.

    Stores each field of the record stream in a parallel append-only
    list and hands out integer row indices as handles, so the per-packet
    hot path performs only list appends — no :class:`PacketRecord`
    dataclass allocation per packet per hop. Queries materialize
    :class:`PacketRecord` objects on demand, making this a drop-in
    replacement for :class:`Tracer` whose cost is shifted from the
    simulation loop to analysis time (and whose columns are directly
    consumable by numpy without an object walk).
    """

    __slots__ = (
        "name",
        "col_flow",
        "col_seqno",
        "col_length",
        "col_arrival",
        "col_start",
        "col_departure",
        "col_dropped",
        "_by_flow",
    )

    enabled = True

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.col_flow: List[Hashable] = []
        self.col_seqno: List[int] = []
        self.col_length: List[int] = []
        self.col_arrival: List[float] = []
        self.col_start: List[Optional[float]] = []
        self.col_departure: List[Optional[float]] = []
        self.col_dropped: List[bool] = []
        self._by_flow: Dict[Hashable, List[int]] = {}

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def on_arrival(self, flow: Hashable, seqno: int, length: int, time: float) -> int:
        """Append a row; the returned row index is the mark handle."""
        idx = len(self.col_flow)
        self.col_flow.append(flow)
        self.col_seqno.append(seqno)
        self.col_length.append(length)
        self.col_arrival.append(time)
        self.col_start.append(None)
        self.col_departure.append(None)
        self.col_dropped.append(False)
        rows = self._by_flow.get(flow)
        if rows is None:
            rows = self._by_flow[flow] = []
        rows.append(idx)
        return idx

    def mark_start(self, handle: int, time: float) -> None:
        """Stamp start-of-service on a row index."""
        self.col_start[handle] = time

    def mark_departure(self, handle: int, time: float) -> None:
        """Stamp departure on a row index."""
        self.col_departure[handle] = time

    def mark_dropped(self, handle: int) -> None:
        """Flag a row index as dropped."""
        self.col_dropped[handle] = True

    # ------------------------------------------------------------------
    # Queries (materialize PacketRecords on demand)
    # ------------------------------------------------------------------
    def _materialize(self, idx: int) -> PacketRecord:
        return PacketRecord(
            flow=self.col_flow[idx],
            seqno=self.col_seqno[idx],
            length=self.col_length[idx],
            arrival=self.col_arrival[idx],
            start_service=self.col_start[idx],
            departure=self.col_departure[idx],
            dropped=self.col_dropped[idx],
            server=self.name,
        )

    @property
    def records(self) -> Tuple[PacketRecord, ...]:
        """All rows as :class:`PacketRecord` objects (materialized now)."""
        return tuple(self._materialize(i) for i in range(len(self.col_flow)))

    def flows(self) -> Tuple[Hashable, ...]:
        """Flows with at least one row, in first-arrival order."""
        return tuple(self._by_flow)

    def for_flow(self, flow: Hashable) -> Tuple[PacketRecord, ...]:
        """All of ``flow``'s rows, materialized."""
        return tuple(self.iter_for_flow(flow))

    def iter_for_flow(self, flow: Hashable) -> Iterator[PacketRecord]:
        """Materialize ``flow``'s rows lazily."""
        return (self._materialize(i) for i in self._by_flow.get(flow, ()))

    def count_for_flow(self, flow: Hashable) -> int:
        """Number of rows of ``flow`` — O(1)."""
        rows = self._by_flow.get(flow)
        return len(rows) if rows is not None else 0

    def _indices(self, flow: Optional[Hashable]) -> Iterable[int]:
        if flow is None:
            return range(len(self.col_flow))
        return self._by_flow.get(flow, ())

    def departed(self, flow: Optional[Hashable] = None) -> Tuple[PacketRecord, ...]:
        """Rows that completed service, materialized."""
        return tuple(self.iter_departed(flow))

    def iter_departed(self, flow: Optional[Hashable] = None) -> Iterator[PacketRecord]:
        """Materialize departed rows lazily."""
        departure = self.col_departure
        return (
            self._materialize(i)
            for i in self._indices(flow)
            if departure[i] is not None
        )

    def dropped(self, flow: Optional[Hashable] = None) -> Tuple[PacketRecord, ...]:
        """Rows of dropped packets, materialized."""
        flags = self.col_dropped
        return tuple(self._materialize(i) for i in self._indices(flow) if flags[i])

    def delays(self, flow: Optional[Hashable] = None) -> List[float]:
        """Per-packet delays of departed rows, straight off the columns."""
        departure = self.col_departure
        arrival = self.col_arrival
        out: List[float] = []
        for i in self._indices(flow):
            d = departure[i]
            if d is not None:
                out.append(d - arrival[i])
        return out

    def work_in_interval(self, flow: Hashable, t1: float, t2: float) -> int:
        """Bits of ``flow`` served entirely within ``[t1, t2]`` (Section 1.2)."""
        start = self.col_start
        departure = self.col_departure
        length = self.col_length
        total = 0
        for i in self._by_flow.get(flow, ()):
            s, d = start[i], departure[i]
            if s is not None and d is not None and s >= t1 and d <= t2:
                total += length[i]
        return total

    def clear(self) -> None:
        """Drop all rows."""
        self.col_flow.clear()
        self.col_seqno.clear()
        self.col_length.clear()
        self.col_arrival.clear()
        self.col_start.clear()
        self.col_departure.clear()
        self.col_dropped.clear()
        self._by_flow.clear()

    def __len__(self) -> int:
        return len(self.col_flow)
