"""Structured packet tracing.

A :class:`Tracer` collects one :class:`PacketRecord` per packet per hop.
The analysis layer (:mod:`repro.analysis`) consumes these records to
compute fairness measures, delay statistics and sequence-number series
(Figure 1(b) of the paper plots exactly such a series).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional


@dataclass
class PacketRecord:
    """One packet's life at one server.

    Times are simulation seconds; ``None`` marks events that have not
    happened (a dropped packet never departs).
    """

    flow: Hashable
    seqno: int
    length: int
    arrival: float
    start_service: Optional[float] = None
    departure: Optional[float] = None
    dropped: bool = False
    server: Optional[str] = None

    @property
    def delay(self) -> Optional[float]:
        """Queueing + transmission delay at this server, if departed."""
        if self.departure is None:
            return None
        return self.departure - self.arrival

    @property
    def queueing_delay(self) -> Optional[float]:
        """Time spent waiting before service began."""
        if self.start_service is None:
            return None
        return self.start_service - self.arrival


class Tracer:
    """Collects per-packet records, indexed by flow."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.records: List[PacketRecord] = []
        self._by_flow: Dict[Hashable, List[PacketRecord]] = {}

    def add(self, record: PacketRecord) -> PacketRecord:
        self.records.append(record)
        self._by_flow.setdefault(record.flow, []).append(record)
        return record

    def on_arrival(
        self, flow: Hashable, seqno: int, length: int, time: float
    ) -> PacketRecord:
        """Convenience: create and register an arrival record."""
        return self.add(
            PacketRecord(
                flow=flow, seqno=seqno, length=length, arrival=time, server=self.name
            )
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def flows(self) -> List[Hashable]:
        return list(self._by_flow)

    def for_flow(self, flow: Hashable) -> List[PacketRecord]:
        return list(self._by_flow.get(flow, []))

    def departed(self, flow: Optional[Hashable] = None) -> List[PacketRecord]:
        records: Iterable[PacketRecord]
        records = self.records if flow is None else self._by_flow.get(flow, [])
        return [r for r in records if r.departure is not None]

    def dropped(self, flow: Optional[Hashable] = None) -> List[PacketRecord]:
        records: Iterable[PacketRecord]
        records = self.records if flow is None else self._by_flow.get(flow, [])
        return [r for r in records if r.dropped]

    def delays(self, flow: Optional[Hashable] = None) -> List[float]:
        return [r.delay for r in self.departed(flow) if r.delay is not None]

    def work_in_interval(self, flow: Hashable, t1: float, t2: float) -> int:
        """Aggregate bits of ``flow`` served entirely within ``[t1, t2]``.

        The paper counts a packet as served in an interval if it *starts
        and finishes* service within it (Section 1.2).
        """
        total = 0
        for record in self._by_flow.get(flow, []):
            if (
                record.start_service is not None
                and record.departure is not None
                and record.start_service >= t1
                and record.departure <= t2
            ):
                total += record.length
        return total

    def clear(self) -> None:
        self.records.clear()
        self._by_flow.clear()

    def __len__(self) -> int:
        return len(self.records)
