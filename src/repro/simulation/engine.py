"""Heapq-based discrete-event simulation loop.

The :class:`Simulator` is deliberately small: a priority queue of
pending callbacks, a clock, and run controls. Everything else in the
reproduction (links, sources, TCP, switches) is built by scheduling
callbacks on a shared ``Simulator``.

Determinism
-----------
Events at equal timestamps fire in the order they were scheduled
(insertion sequence), and all randomness in the library flows through
:class:`repro.simulation.random.RandomStreams`, so a run is a pure
function of its seed and parameters.

Hot-path layout
---------------
The heap holds plain tuples, never :class:`~repro.simulation.events.Event`
objects, in one of two shapes sharing the ``(time, priority, seq)``
ordering prefix (``seq`` is globally unique, so comparison never reaches
the payload slots):

* ``(time, priority, seq, event)`` — a *cancellable* entry created by
  :meth:`Simulator.at` / :meth:`Simulator.after`. The ``Event`` is the
  caller's handle; the loop consults ``event.cancelled`` and skips stale
  entries in place.
* ``(time, priority, seq, None, callback, args)`` — a *fire-and-forget*
  entry created by :meth:`Simulator.call_at` / :meth:`Simulator.call_after`.
  No handle object is ever allocated; the loop invokes ``callback(*args)``
  directly. Most traffic-source and link-completion timers use this path,
  so the common case schedules and fires an event with zero object
  allocations beyond the heap tuple itself.

:meth:`Simulator.run` additionally hoists the heap, ``heappop`` and the
run bounds into locals and inlines the cancelled-entry skip, which is
where the bulk of the measured dispatch speedup in ``BENCH_engine.json``
comes from.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Tuple, cast

from repro.simulation.events import Event, _sequence


class SimulationError(Exception):
    """Raised on invalid scheduling requests (e.g. into the past)."""


class Simulator:
    """Discrete-event simulator with a float-seconds clock."""

    __slots__ = (
        "_now",
        "_heap",
        "_running",
        "_stopped",
        "_truncated",
        "_events_processed",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[Any, ...]] = []
        self._running = False
        self._stopped = False
        self._truncated = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (for complexity accounting)."""
        return self._events_processed

    @property
    def truncated(self) -> bool:
        """True when the last :meth:`run` hit ``max_events`` with work
        still pending (within ``until``, if one was given).

        A truncated run is an *incomplete* simulation — results computed
        from its traces are suspect. The flag is reset by the next call
        to :meth:`run`.
        """
        return self._truncated

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``.

        ``time`` may equal ``now`` (the event fires after the current
        callback returns) but may not lie in the past. Returns a
        cancellable :class:`~repro.simulation.events.Event` handle; use
        :meth:`call_at` when no handle is needed.
        """
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        event = Event(time, callback, args, priority=priority)
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        return event

    def after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + delay, callback, *args, priority=priority)

    def call_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(*args)`` at ``time``, fire-and-forget.

        Identical ordering semantics to :meth:`at`, but no
        :class:`~repro.simulation.events.Event` handle is allocated and
        the timer cannot be cancelled. Use for the overwhelmingly common
        timers that never need cancellation (source emissions, wake-ups).
        """
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        heapq.heappush(
            self._heap, (time, priority, next(_sequence), None, callback, args)
        )

    def call_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(*args)`` after ``delay`` seconds, fire-and-forget."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.call_at(self._now + delay, callback, *args, priority=priority)

    # ------------------------------------------------------------------
    # Run controls
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the loop after the currently firing event returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty."""
        self._drop_cancelled()
        return cast(float, self._heap[0][0]) if self._heap else None

    def step(self) -> bool:
        """Fire the single next event. Returns False when none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        self._now = entry[0]
        self._events_processed += 1
        event = entry[3]
        if event is None:
            entry[4](*entry[5])
        else:
            event._fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time
            and advance the clock to exactly ``until``. ``None`` runs to
            event-queue exhaustion.
        max_events:
            Safety valve for runaway simulations. Exhausting it with
            events still pending sets :attr:`truncated` so callers can
            tell an incomplete run from a naturally finished one.

        Returns the simulation time at which the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        self._truncated = False
        heap = self._heap
        heappop = heapq.heappop
        limit = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        fired = 0
        try:
            while heap and not self._stopped:
                entry = heap[0]
                event = entry[3]
                if event is not None and event.cancelled:
                    heappop(heap)
                    continue
                time = entry[0]
                if time > limit:
                    break
                heappop(heap)
                self._now = time
                self._events_processed += 1
                if event is None:
                    entry[4](*entry[5])
                else:
                    event._fire()
                fired += 1
                if fired >= budget:
                    while heap:
                        head = heap[0]
                        ev = head[3]
                        if ev is not None and ev.cancelled:
                            heappop(heap)
                            continue
                        if head[0] <= limit:
                            self._truncated = True
                        break
                    break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def run_for(self, duration: float, max_events: Optional[int] = None) -> float:
        """Run for ``duration`` simulated seconds from the current time."""
        return self.run(until=self._now + duration, max_events=max_events)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap:
            event = heap[0][3]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
            else:
                break

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.9g}, pending={len(self._heap)})"
