"""Heapq-based discrete-event simulation loop.

The :class:`Simulator` is deliberately small: a priority queue of
pending callbacks, a clock, and run controls. Everything else in the
reproduction (links, sources, TCP, switches) is built by scheduling
callbacks on a shared ``Simulator``.

Determinism
-----------
Events at equal timestamps fire in the order they were scheduled
(insertion sequence), and all randomness in the library flows through
:class:`repro.simulation.random.RandomStreams`, so a run is a pure
function of its seed and parameters.

Hot-path layout
---------------
The heap holds plain tuples, never :class:`~repro.simulation.events.Event`
objects, in one of two shapes sharing the ``(time, priority, seq)``
ordering prefix (``seq`` is globally unique, so comparison never reaches
the payload slots):

* ``(time, priority, seq, event)`` — a *cancellable* entry created by
  :meth:`Simulator.at` / :meth:`Simulator.after`. The ``Event`` is the
  caller's handle; the loop consults ``event.cancelled`` and skips stale
  entries in place.
* ``(time, priority, seq, None, callback, args)`` — a *fire-and-forget*
  entry created by :meth:`Simulator.call_at` / :meth:`Simulator.call_after`.
  No handle object is ever allocated; the loop invokes ``callback(*args)``
  directly. Most traffic-source and link-completion timers use this path,
  so the common case schedules and fires an event with zero object
  allocations beyond the heap tuple itself.

:meth:`Simulator.run` additionally hoists the heap, ``heappop`` and the
run bounds into locals and inlines the cancelled-entry skip, which is
where the bulk of the measured dispatch speedup in ``BENCH_engine.json``
comes from.

Arrival streams (batch admission)
---------------------------------
Scheduling one heap tuple per generated packet is the other large cost
at scale: a 10^6-flow workload pushes millions of timer tuples through
the heap just to deliver precomputed arrivals. An **arrival stream**
(:class:`ArrivalStream`) bypasses the heap for that case: it exposes the
time of its next pending arrival (``next_time``) and a ``fire()`` that
delivers exactly one arrival and advances. The run loop merges attached
streams with the heap — a stream wins ties against heap entries (an
arrival *at* t happens before timers at t, matching the order
``call_at`` arrivals would have had when scheduled first) — so sources
can hand the engine whole precomputed arrival arrays
(:mod:`repro.traffic.batch`) at O(1) heap cost instead of O(N log N).
Stream firings count toward ``events_processed`` and the ``max_events``
budget exactly like heap events. Attach before calling :meth:`run`;
streams attached while the loop is running take effect on the next
:meth:`run`/:meth:`step`.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Protocol, Tuple, cast

from repro.simulation.events import Event, _sequence


class ArrivalStream(Protocol):
    """Protocol for batch arrival sources merged into the run loop.

    ``next_time`` is the absolute time of the next pending arrival, or
    ``math.inf`` when the stream is exhausted (the loop then detaches
    it). ``fire()`` delivers exactly one arrival (the one at
    ``next_time``) and advances ``next_time``.
    """

    next_time: float

    def fire(self) -> None: ...


class SimulationError(Exception):
    """Raised on invalid scheduling requests (e.g. into the past)."""


class Simulator:
    """Discrete-event simulator with a float-seconds clock."""

    __slots__ = (
        "_now",
        "_heap",
        "_streams",
        "_running",
        "_stopped",
        "_truncated",
        "_events_processed",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[Any, ...]] = []
        self._streams: List[ArrivalStream] = []
        self._running = False
        self._stopped = False
        self._truncated = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (for complexity accounting)."""
        return self._events_processed

    @property
    def truncated(self) -> bool:
        """True when the last :meth:`run` hit ``max_events`` with work
        still pending (within ``until``, if one was given).

        A truncated run is an *incomplete* simulation — results computed
        from its traces are suspect. The flag is reset by the next call
        to :meth:`run`.
        """
        return self._truncated

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``.

        ``time`` may equal ``now`` (the event fires after the current
        callback returns) but may not lie in the past. Returns a
        cancellable :class:`~repro.simulation.events.Event` handle; use
        :meth:`call_at` when no handle is needed.
        """
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        event = Event(time, callback, args, priority=priority)
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        return event

    def after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + delay, callback, *args, priority=priority)

    def call_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(*args)`` at ``time``, fire-and-forget.

        Identical ordering semantics to :meth:`at`, but no
        :class:`~repro.simulation.events.Event` handle is allocated and
        the timer cannot be cancelled. Use for the overwhelmingly common
        timers that never need cancellation (source emissions, wake-ups).
        """
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        heapq.heappush(
            self._heap, (time, priority, next(_sequence), None, callback, args)
        )

    def call_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(*args)`` after ``delay`` seconds, fire-and-forget."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.call_at(self._now + delay, callback, *args, priority=priority)

    def attach_stream(self, stream: ArrivalStream) -> None:
        """Merge an :class:`ArrivalStream` into the event loop.

        The stream delivers precomputed arrivals without a heap tuple
        per packet. An exhausted stream (``next_time == math.inf``) is
        detached automatically by the loop. Attaching while the loop is
        running takes effect on the next :meth:`run`/:meth:`step`.
        """
        if math.isnan(stream.next_time):
            raise SimulationError("arrival stream next_time is NaN")
        if stream.next_time < self._now:
            raise SimulationError(
                f"arrival stream starts in the past: "
                f"{stream.next_time} < now={self._now}"
            )
        self._streams.append(stream)

    # ------------------------------------------------------------------
    # Run controls
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the loop after the currently firing event returns."""
        self._stopped = True

    def _min_stream(self) -> "Tuple[float, Optional[ArrivalStream]]":
        """Earliest attached stream, pruning exhausted ones."""
        streams = self._streams
        if not streams:
            return math.inf, None
        best_t = math.inf
        best: Optional[ArrivalStream] = None
        exhausted = False
        for s in streams:
            t = s.next_time
            if t == math.inf:
                exhausted = True
            elif t < best_t:
                best_t = t
                best = s
        if exhausted:
            self._streams = [s for s in streams if s.next_time != math.inf]
        return best_t, best

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None when nothing is pending.

        Considers both the timer heap and attached arrival streams.
        """
        self._drop_cancelled()
        heap_t = cast(float, self._heap[0][0]) if self._heap else math.inf
        stream_t, _ = self._min_stream()
        nxt = min(heap_t, stream_t)
        return None if nxt == math.inf else nxt

    def step(self) -> bool:
        """Fire the single next event (heap timer or stream arrival).

        Returns False when none remain. A stream arrival wins a tie
        against a heap timer at the same instant (same rule as
        :meth:`run`).
        """
        self._drop_cancelled()
        heap_t = cast(float, self._heap[0][0]) if self._heap else math.inf
        stream_t, stream = self._min_stream()
        if stream is not None and stream_t <= heap_t:
            self._now = stream_t
            self._events_processed += 1
            stream.fire()
            return True
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        self._now = entry[0]
        self._events_processed += 1
        event = entry[3]
        if event is None:
            entry[4](*entry[5])
        else:
            event._fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time
            and advance the clock to exactly ``until``. ``None`` runs to
            event-queue exhaustion.
        max_events:
            Safety valve for runaway simulations. Exhausting it with
            events still pending sets :attr:`truncated` so callers can
            tell an incomplete run from a naturally finished one.

        Returns the simulation time at which the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        self._truncated = False
        heap = self._heap
        heappop = heapq.heappop
        limit = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        fired = 0
        try:
            if self._streams:
                fired = self._run_merged(limit, budget)
            else:
                while heap and not self._stopped:
                    entry = heap[0]
                    event = entry[3]
                    if event is not None and event.cancelled:
                        heappop(heap)
                        continue
                    time = entry[0]
                    if time > limit:
                        break
                    heappop(heap)
                    self._now = time
                    self._events_processed += 1
                    if event is None:
                        entry[4](*entry[5])
                    else:
                        event._fire()
                    fired += 1
                    if fired >= budget:
                        while heap:
                            head = heap[0]
                            ev = head[3]
                            if ev is not None and ev.cancelled:
                                heappop(heap)
                                continue
                            if head[0] <= limit:
                                self._truncated = True
                            break
                        break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def _run_merged(self, limit: float, budget: float) -> int:
        """Run loop merging attached arrival streams with the timer heap.

        Kept out of :meth:`run`'s pure-heap fast path so simulations
        without streams pay nothing for the feature. A stream arrival
        wins ties against heap timers at the same instant.
        """
        heap = self._heap
        heappop = heapq.heappop
        fired = 0
        while not self._stopped:
            # Surface the live heap head (skip cancelled in place).
            while heap:
                head = heap[0]
                ev = head[3]
                if ev is not None and ev.cancelled:
                    heappop(heap)
                    continue
                break
            heap_t = heap[0][0] if heap else math.inf
            stream_t, stream = self._min_stream()
            if stream is not None and stream_t <= heap_t:
                if stream_t > limit:
                    break
                self._now = stream_t
                self._events_processed += 1
                stream.fire()
            elif heap:
                entry = heap[0]
                time = entry[0]
                if time > limit:
                    break
                heappop(heap)
                self._now = time
                self._events_processed += 1
                event = entry[3]
                if event is None:
                    entry[4](*entry[5])
                else:
                    event._fire()
            else:
                break
            fired += 1
            if fired >= budget:
                nxt = self.peek()
                if nxt is not None and nxt <= limit:
                    self._truncated = True
                break
        return fired

    def run_for(self, duration: float, max_events: Optional[int] = None) -> float:
        """Run for ``duration`` simulated seconds from the current time."""
        return self.run(until=self._now + duration, max_events=max_events)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap:
            event = heap[0][3]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
            else:
                break

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.9g}, pending={len(self._heap)})"
