"""Discrete-event simulation loop over a pluggable event queue.

The :class:`Simulator` is deliberately small: a priority queue of
pending callbacks, a clock, and run controls. Everything else in the
reproduction (links, sources, TCP, switches) is built by scheduling
callbacks on a shared ``Simulator``.

Determinism
-----------
Events at equal timestamps fire in the order they were scheduled
(insertion sequence), and all randomness in the library flows through
:class:`repro.simulation.random.RandomStreams`, so a run is a pure
function of its seed and parameters.

Hot-path layout
---------------
The event queue holds plain tuples, never
:class:`~repro.simulation.events.Event` objects, in one of two shapes
sharing the ``(time, priority, seq)`` ordering prefix (``seq`` is
globally unique, so comparison never reaches the payload slots):

* ``(time, priority, seq, event)`` — a *cancellable* entry created by
  :meth:`Simulator.at` / :meth:`Simulator.after`. The ``Event`` is the
  caller's handle; the loop consults ``event.cancelled`` and skips stale
  entries in place.
* ``(time, priority, seq, None, callback, args)`` — a *fire-and-forget*
  entry created by :meth:`Simulator.call_at` / :meth:`Simulator.call_after`.
  No handle object is ever allocated; the loop invokes ``callback(*args)``
  directly. Most traffic-source and link-completion timers use this path,
  so the common case schedules and fires an event with zero object
  allocations beyond the queue tuple itself.

Which container orders those tuples is a backend choice
(:mod:`repro.simulation.eventq`): the seed binary heap
(:class:`~repro.simulation.eventq.BinaryHeapQueue`, the default) or a
calendar queue (:class:`~repro.simulation.eventq.CalendarQueue`) whose
push/pop are O(1) amortized. Both yield the identical pop order, and
both carry their own inlined ``drain`` hot loop that
:meth:`Simulator.run` delegates to on the common path (no streams, no
``max_events`` budget).

Busy-period timer elision
-------------------------
:meth:`Simulator.reserve_inline` lets the callback *currently firing*
consume the next tick of its own timer chain without a queue round
trip: if nothing else (queue entry or stream arrival) is due at or
before ``time`` and run controls permit, the clock jumps straight to
``time`` and the caller runs its completion logic inline. The strict
"nothing at or before" test is what keeps the optimization invisible:
a successfully reserved instant provably has no other event the loop
could have interleaved, and the event counter advances exactly as if
the timer had been popped. :class:`repro.servers.link.Link` uses this
to chain back-to-back departures of a busy period (see HACKING.md).

Arrival streams (batch admission)
---------------------------------
Scheduling one queue tuple per generated packet is the other large cost
at scale: a 10^6-flow workload pushes millions of timer tuples through
the queue just to deliver precomputed arrivals. An **arrival stream**
(:class:`ArrivalStream`) bypasses the queue for that case: it exposes the
time of its next pending arrival (``next_time``) and a ``fire()`` that
delivers exactly one arrival and advances. The run loop merges attached
streams with the queue — a stream wins ties against queue entries (an
arrival *at* t happens before timers at t, matching the order
``call_at`` arrivals would have had when scheduled first) — so sources
can hand the engine whole precomputed arrival arrays
(:mod:`repro.traffic.batch`) at O(1) queue cost instead of O(N log N).
Stream firings count toward ``events_processed`` and the ``max_events``
budget exactly like queue events. Attach before calling :meth:`run`;
streams attached while the loop is running take effect on the next
:meth:`run`/:meth:`step`.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Protocol, Tuple

from repro.simulation.eventq import (
    BinaryHeapQueue,
    EventQueue,
    EventQueueSpec,
    make_event_queue,
)
from repro.simulation.events import Event, _sequence


class ArrivalStream(Protocol):
    """Protocol for batch arrival sources merged into the run loop.

    ``next_time`` is the absolute time of the next pending arrival, or
    ``math.inf`` when the stream is exhausted (the loop then detaches
    it). ``fire()`` delivers exactly one arrival (the one at
    ``next_time``) and advances ``next_time``.
    """

    next_time: float

    def fire(self) -> None: ...


class SimulationError(Exception):
    """Raised on invalid scheduling requests (e.g. into the past)."""


class Simulator:
    """Discrete-event simulator with a float-seconds clock.

    Parameters
    ----------
    start_time:
        Initial clock value.
    event_queue:
        Event-queue backend: a name from
        :data:`repro.simulation.eventq.EVENT_QUEUES` (``"heap"``,
        ``"calendar"``), a queue instance, a factory, or ``None`` for
        the ambient default (``set_default_event_queue`` /
        ``REPRO_EVENT_QUEUE`` / binary heap).
    """

    __slots__ = (
        "_now",
        "_queue",
        "_push",
        "_peek_live",
        "_streams",
        "_running",
        "_stopped",
        "_truncated",
        "_events_processed",
        "_limit",
        "_budget_left",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        event_queue: EventQueueSpec = None,
    ) -> None:
        self._now = float(start_time)
        self._queue: EventQueue = make_event_queue(event_queue)
        self._push = self._queue.push
        self._peek_live = self._queue.peek_live
        self._streams: List[ArrivalStream] = []
        self._running = False
        self._stopped = False
        self._truncated = False
        self._events_processed = 0
        self._limit = -math.inf
        self._budget_left: Optional[int] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (for complexity accounting)."""
        return self._events_processed

    @property
    def event_queue(self) -> EventQueue:
        """The event-queue backend this simulator runs on."""
        return self._queue

    @property
    def truncated(self) -> bool:
        """True when the last :meth:`run` hit ``max_events`` with work
        still pending (within ``until``, if one was given).

        A truncated run is an *incomplete* simulation — results computed
        from its traces are suspect. The flag is reset by the next call
        to :meth:`run`.
        """
        return self._truncated

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``.

        ``time`` may equal ``now`` (the event fires after the current
        callback returns) but may not lie in the past. Returns a
        cancellable :class:`~repro.simulation.events.Event` handle; use
        :meth:`call_at` when no handle is needed.
        """
        if not time >= self._now:  # also catches NaN
            if math.isnan(time):
                raise SimulationError("cannot schedule an event at NaN")
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        event = Event(time, callback, args, priority=priority)
        self._push((time, priority, event.seq, event))
        return event

    def after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + delay, callback, *args, priority=priority)

    def call_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(*args)`` at ``time``, fire-and-forget.

        Identical ordering semantics to :meth:`at`, but no
        :class:`~repro.simulation.events.Event` handle is allocated and
        the timer cannot be cancelled. Use for the overwhelmingly common
        timers that never need cancellation (source emissions, wake-ups).
        """
        if not time >= self._now:  # also catches NaN
            if math.isnan(time):
                raise SimulationError("cannot schedule an event at NaN")
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        self._push((time, priority, next(_sequence), None, callback, args))

    def call_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(*args)`` after ``delay`` seconds, fire-and-forget."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.call_at(self._now + delay, callback, *args, priority=priority)

    def attach_stream(self, stream: ArrivalStream) -> None:
        """Merge an :class:`ArrivalStream` into the event loop.

        The stream delivers precomputed arrivals without a queue tuple
        per packet. An exhausted stream (``next_time == math.inf``) is
        detached automatically by the loop. Attaching while the loop is
        running takes effect on the next :meth:`run`/:meth:`step`.
        """
        if math.isnan(stream.next_time):
            raise SimulationError("arrival stream next_time is NaN")
        if stream.next_time < self._now:
            raise SimulationError(
                f"arrival stream starts in the past: "
                f"{stream.next_time} < now={self._now}"
            )
        self._streams.append(stream)

    # ------------------------------------------------------------------
    # Run controls
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the loop after the currently firing event returns."""
        self._stopped = True

    def _min_stream(self) -> "Tuple[float, Optional[ArrivalStream]]":
        """Earliest attached stream, pruning exhausted ones."""
        streams = self._streams
        if not streams:
            return math.inf, None
        best_t = math.inf
        best: Optional[ArrivalStream] = None
        exhausted = False
        for s in streams:
            t = s.next_time
            if t == math.inf:
                exhausted = True
            elif t < best_t:
                best_t = t
                best = s
        if exhausted:
            self._streams = [s for s in streams if s.next_time != math.inf]
        return best_t, best

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None when nothing is pending.

        Considers both the event queue and attached arrival streams.
        """
        head = self._queue.peek_live()
        heap_t = float(head[0]) if head is not None else math.inf
        stream_t, _ = self._min_stream()
        nxt = min(heap_t, stream_t)
        return None if nxt == math.inf else nxt

    def step(self) -> bool:
        """Fire the single next event (queue timer or stream arrival).

        Returns False when none remain. A stream arrival wins a tie
        against a queue timer at the same instant (same rule as
        :meth:`run`).
        """
        queue = self._queue
        head = queue.peek_live()
        heap_t = float(head[0]) if head is not None else math.inf
        stream_t, stream = self._min_stream()
        if stream is not None and stream_t <= heap_t:
            self._now = stream_t
            self._events_processed += 1
            stream.fire()
            return True
        if head is None:
            return False
        entry = queue.pop()
        self._now = entry[0]
        self._events_processed += 1
        event = entry[3]
        if event is None:
            entry[4](*entry[5])
        else:
            event._fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time
            and advance the clock to exactly ``until``. ``None`` runs to
            event-queue exhaustion.
        max_events:
            Safety valve for runaway simulations. Exhausting it with
            events still pending sets :attr:`truncated` so callers can
            tell an incomplete run from a naturally finished one.

        Returns the simulation time at which the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        self._truncated = False
        limit = math.inf if until is None else until
        self._limit = limit
        self._budget_left = max_events
        try:
            if self._streams or max_events is not None:
                self._run_generic(limit)
            else:
                # Common case: the backend's own inlined hot loop.
                self._queue.drain(self, limit)
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def _run_generic(self, limit: float) -> None:
        """Run loop handling arrival streams and ``max_events`` budgets.

        Kept out of the common path so simulations without either pay
        nothing; goes through the queue interface only (the inlined
        container loops live in :mod:`repro.simulation.eventq`). A
        stream arrival wins ties against queue timers at the same
        instant.
        """
        queue = self._queue
        while not self._stopped:
            head = queue.peek_live()
            heap_t = float(head[0]) if head is not None else math.inf
            stream_t, stream = self._min_stream()
            if stream is not None and stream_t <= heap_t:
                if stream_t > limit:
                    break
                self._now = stream_t
                self._events_processed += 1
                stream.fire()
            elif head is not None:
                time = head[0]
                if time > limit:
                    break
                queue.pop()
                self._now = time
                self._events_processed += 1
                event = head[3]
                if event is None:
                    head[4](*head[5])
                else:
                    event._fire()
            else:
                break
            budget = self._budget_left
            if budget is not None:
                # reserve_inline may have spent part of the budget
                # during the callback; settle the firing just done.
                budget -= 1
                self._budget_left = budget
                if budget <= 0:
                    nxt = self.peek()
                    if nxt is not None and nxt <= limit:
                        self._truncated = True
                    break

    def run_for(self, duration: float, max_events: Optional[int] = None) -> float:
        """Run for ``duration`` simulated seconds from the current time."""
        return self.run(until=self._now + duration, max_events=max_events)

    # ------------------------------------------------------------------
    # Busy-period timer elision
    # ------------------------------------------------------------------
    def reserve_inline(self, time: float) -> bool:
        """Claim the instant ``time`` for the currently firing callback.

        Succeeds — advancing the clock to ``time`` and counting one
        processed event — only when the loop could not possibly have
        run anything else first: the loop is live, ``time`` is within
        the active ``until`` horizon and event budget, and every
        pending queue entry and stream arrival is *strictly* later than
        ``time`` (a tie must lose to the already-queued work, which
        holds an earlier sequence number — and to streams, which win
        ties by rule). On success the caller must immediately run the
        work it would otherwise have scheduled at ``time``; on failure
        it must schedule normally. Either way the observable schedule
        is identical; success merely skips the queue round trip.
        """
        if not self._running or self._stopped or time > self._limit:
            return False
        budget = self._budget_left
        if budget is not None and budget <= 1:
            return False
        head = self._peek_live()
        if head is not None and head[0] <= time:
            return False
        if self._streams:
            stream_t, _ = self._min_stream()
            if stream_t <= time:
                return False
        if budget is not None:
            self._budget_left = budget - 1
        self._now = time
        self._events_processed += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.9g}, pending={len(self._queue)})"
