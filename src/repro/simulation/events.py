"""Event handles for the discrete-event simulator.

An :class:`Event` is a cancellable, ordered record placed on the
simulator's heap. Ordering is by ``(time, priority, sequence)`` where
``sequence`` is a monotonically increasing insertion counter, so events
scheduled for the same instant fire in FIFO order of scheduling. The
``priority`` field lets infrastructure events (e.g. capacity-profile
breakpoints) run before or after ordinary events at the same instant.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Tuple


class EventCancelled(Exception):
    """Raised when interacting with an event that was cancelled."""


_sequence = itertools.count()


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.simulation.engine.Simulator.at`
    and :meth:`~repro.simulation.engine.Simulator.after`; user code should
    not construct them directly.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = next(_sequence)
        self.callback: Optional[Callable[..., Any]] = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Cancel the event; a cancelled event is skipped by the loop.

        Cancelling an already-fired or already-cancelled event is a no-op
        so callers do not need to track firing themselves.
        """
        self.cancelled = True
        # Drop references early so large closures are collectable even
        # while the stale heap entry lingers.
        self.callback = None
        self.args = ()

    @property
    def pending(self) -> bool:
        """True when the event is still scheduled to fire."""
        return not self.cancelled and not self.fired

    def _fire(self) -> None:
        if self.cancelled:
            raise EventCancelled("attempted to fire a cancelled event")
        self.fired = True
        callback, args = self.callback, self.args
        self.callback = None
        self.args = ()
        assert callback is not None
        callback(*args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event(t={self.time:.9g}, prio={self.priority}, {state})"
