"""Generator-based processes on top of the event engine.

Writing multi-step behaviours as callback chains gets awkward (see the
TCP sender); a *process* is a plain generator that yields its next wait
and is resumed by the engine:

.. code-block:: python

    def talker(sim, link):
        for seq in range(100):
            link.send(Packet("audio", 1280, seqno=seq))
            yield 0.02                 # sleep 20 ms

    spawn(sim, talker(sim, link))

Yield values:

* a ``float`` — sleep that many seconds;
* an :class:`Until` — sleep until an absolute time;
* a :class:`Waiter` — park until someone calls ``waiter.fire(value)``;
  the fired value becomes the result of the ``yield`` expression.

Processes compose with everything else in the library — they are just
sugar over ``Simulator.after``.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.simulation.engine import SimulationError, Simulator

ProcessGen = Generator[Any, Any, None]


class Until:
    """Yield target: resume at an absolute simulation time."""

    __slots__ = ("time",)

    def __init__(self, time: float) -> None:
        self.time = float(time)


class Waiter:
    """Yield target: an event another component fires explicitly.

    A waiter can be fired before a process waits on it (the value is
    latched), and multiple processes may wait on the same waiter.
    """

    __slots__ = ("fired", "value", "_waiting")

    def __init__(self) -> None:
        self.fired = False
        self.value: Any = None
        self._waiting: List["Process"] = []

    def fire(self, value: Any = None) -> None:
        """Wake every process parked on this waiter."""
        if self.fired:
            raise SimulationError("waiter already fired")
        self.fired = True
        self.value = value
        waiting, self._waiting = self._waiting, []
        for process in waiting:
            process._resume(value)


class Process:
    """A running generator process (created via :func:`spawn`)."""

    __slots__ = ("sim", "gen", "name", "finished", "error")

    def __init__(self, sim: Simulator, gen: ProcessGen, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = False
        self.error: Optional[BaseException] = None

    def _start(self) -> None:
        self._resume(None)

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        try:
            target = self.gen.send(value)
        except StopIteration:
            self.finished = True
            return
        except Exception as exc:  # surface in the owner's face, once
            self.finished = True
            self.error = exc
            raise
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            self.sim.after(float(target), self._resume, None)
        elif isinstance(target, Until):
            self.sim.at(max(target.time, self.sim.now), self._resume, None)
        elif isinstance(target, Waiter):
            if target.fired:
                self.sim.after(0.0, self._resume, target.value)
            else:
                target._waiting.append(self)
        else:
            self.finished = True
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}; "
                "yield a delay, Until, or Waiter"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"Process({self.name}, {state})"


def spawn(sim: Simulator, gen: ProcessGen, name: str = "", delay: float = 0.0) -> Process:
    """Start a generator process; its first step runs after ``delay``."""
    process = Process(sim, gen, name=name)
    sim.after(delay, process._start)
    return process
