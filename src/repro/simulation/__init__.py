"""Discrete-event simulation substrate.

This package provides the event-driven simulator on which every
experiment in the reproduction runs: a heapq-based event loop
(:mod:`repro.simulation.engine`), cancellable event handles
(:mod:`repro.simulation.events`), seeded random-stream management
(:mod:`repro.simulation.random`), and structured packet tracing
(:mod:`repro.simulation.tracing`).
"""

from repro.simulation.engine import ArrivalStream, Simulator
from repro.simulation.eventq import (
    EVENT_QUEUES,
    BinaryHeapQueue,
    CalendarQueue,
    make_event_queue,
    set_default_event_queue,
)
from repro.simulation.events import Event, EventCancelled
from repro.simulation.process import Process, Until, Waiter, spawn
from repro.simulation.random import RandomStreams, derive_seed
from repro.simulation.tracing import (
    ColumnarTracer,
    NullTracer,
    PacketRecord,
    SamplingTracer,
    Tracer,
)

__all__ = [
    "Simulator",
    "ArrivalStream",
    "BinaryHeapQueue",
    "CalendarQueue",
    "EVENT_QUEUES",
    "make_event_queue",
    "set_default_event_queue",
    "Event",
    "EventCancelled",
    "RandomStreams",
    "derive_seed",
    "PacketRecord",
    "Tracer",
    "NullTracer",
    "SamplingTracer",
    "ColumnarTracer",
    "Process",
    "spawn",
    "Until",
    "Waiter",
]
