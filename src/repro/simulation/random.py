"""Seeded random-stream management.

Every stochastic component in the library (Poisson sources, EBF capacity
processes, VBR video models, ...) draws from its own named
``random.Random`` instance derived deterministically from a single
experiment seed. This keeps experiments reproducible and — crucially for
comparisons like WFQ-vs-SFQ on identical workloads — lets two runs see
*identical* arrival processes regardless of how many extra draws one
scheduler's internals make.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from typing import Dict, Iterator


def derive_seed(*parts: object) -> int:
    """Derive a stable 63-bit seed from arbitrary components.

    The campaign runner (:mod:`repro.experiments.campaign`) shards a
    sweep into (experiment, params, seed-slot) work items and seeds each
    shard with ``derive_seed(...)`` over the shard's canonical key. The
    hash is SHA-256 over the ``str()`` forms joined with an unlikely
    separator, so the result depends only on the *values* — never on
    worker count, completion order, process ids, or Python's randomized
    ``hash()`` — and two shards differing in any component get
    independent RNG universes (each ultimately feeding a
    :class:`RandomStreams`).
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RandomStreams:
    """A factory of independent, deterministically seeded RNG streams."""

    __slots__ = ("seed", "_streams")

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG stream for ``name``, creating it on first use.

        The sub-seed mixes the experiment seed with a CRC of the stream
        name, so adding a new named stream never perturbs existing ones.
        """
        rng = self._streams.get(name)
        if rng is None:
            sub_seed = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF
            rng = random.Random(sub_seed)
            self._streams[name] = rng
        return rng

    def __getitem__(self, name: str) -> random.Random:
        return self.stream(name)

    def names(self) -> Iterator[str]:
        return iter(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
