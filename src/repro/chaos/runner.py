"""Materialize a :class:`ChaosSchedule` into a monitored live run.

``run_schedule(schedule, algorithm)`` builds the topology (one link,
the discipline constructed through the public
:func:`repro.make_scheduler` factory), attaches the full
:class:`~repro.faults.monitors.MonitorSuite`, arms one injector per
fault event, runs the simulation, and returns a structured
:class:`ChaosReport`. The run is a pure function of
``(schedule, algorithm)``: all randomness (CBR jitter, packet-fault
draws) comes from streams derived from the schedule's own seed.

Monitor policy
--------------
Virtual-time monotonicity and packet conservation are checked on every
discipline that supports them. The Theorem 1 fairness bound is
*strictly* checked (``bound_factor=1.0``) only where the paper proves
it — SFQ — and only on schedules containing no ``reweight`` events
(re-weighting changes the theorem's constants mid-interval; the
monitor's span rebase keeps the measurement meaningful, but transient
over-bound gaps from packets tagged under the old rate are expected
and are not scheduler bugs). Everywhere else the monitor runs in
measure-only mode (``bound_factor=inf``) and the report still carries
:attr:`ChaosReport.max_gap`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.chaos.fixtures import ensure_fixture_registered
from repro.chaos.schedule import ChaosSchedule
from repro.core.registry import make_scheduler
from repro.faults.injectors import (
    LinkOutage,
    PacketFaults,
    ServerStall,
    WeightReconfig,
)
from repro.faults.monitors import MonitorSuite, install_monitors
from repro.metrics.session import hub_for
from repro.servers.base import ConstantCapacity
from repro.servers.link import Link
from repro.simulation.engine import Simulator
from repro.simulation.random import RandomStreams, derive_seed
from repro.simulation.tracing import NullTracer
from repro.traffic.base import Ingress
from repro.traffic.cbr import CBRSource

__all__ = [
    "DEFAULT_ZOO",
    "CHECKED_FAIRNESS",
    "ChaosReport",
    "run_schedule",
]

#: The work-conserving disciplines a chaos campaign sweeps by default.
#: DelayEDD/JitterEDD are excluded: their flows need
#: ``add_flow_with_deadline`` and a non-work-conserving regulator, so a
#: generic weighted-flow schedule cannot drive them.
DEFAULT_ZOO = (
    "SFQ",
    "SCFQ",
    "WFQ",
    "FQS",
    "WF2Q",
    "VirtualClock",
    "DRR",
    "WRR",
    "FIFO",
)

#: ``algorithm -> bound_factor`` for *strict* fairness checking; any
#: discipline not listed runs the fairness monitor in measure-only
#: mode. Only SFQ carries Theorem 1's bound on arbitrary (including
#: fluctuating/faulted) servers.
CHECKED_FAIRNESS: Dict[str, float] = {"SFQ": 1.0}

#: Safety valve for the event loop: generous enough for any generated
#: schedule, small enough to stop a runaway scheduler bug.
DEFAULT_MAX_EVENTS = 2_000_000


@dataclass
class ChaosReport:
    """Everything one chaos run produced, in plain data."""

    algorithm: str
    schedule: ChaosSchedule
    violations: List[Dict[str, Any]] = field(default_factory=list)
    transmitted: int = 0
    dropped: int = 0
    max_gap: float = 0.0
    fairness_checked: bool = False
    truncated: bool = False  # event-budget exhaustion, not a clean finish
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.truncated

    def first_violation(self, invariant: Optional[str] = None) -> Optional[Dict[str, Any]]:
        """Earliest violation payload (optionally of one invariant)."""
        for violation in self.violations:
            if invariant is None or violation["invariant"] == invariant:
                return violation
        return None


class _ChurnWindow:
    """One scheduled join/leave window of an ephemeral flow.

    Join registers the flow and starts a CBR source; leave stops
    admission and removes the flow from the scheduler as soon as its
    backlog (and any in-flight packet) has drained —
    ``remove_flow`` rejects backlogged flows, so removal rides the
    link's departure hook, same idiom as
    :class:`repro.faults.FlowChurn`.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        ingress: Ingress,
        flow_id: Hashable,
        weight: float,
        rate: float,
        packet_length: int,
        start: float,
        stop: float,
    ) -> None:
        self.sim = sim
        self.link = link
        self.ingress = ingress
        self.flow_id = flow_id
        self.weight = weight
        self.rate = rate
        self.packet_length = packet_length
        self.stop = stop
        self._leaving = False
        self.joined = False
        self.removed = False
        link.departure_hooks.append(self._on_departure)
        sim.at(start, self._join)
        sim.at(stop, self._leave)

    def _join(self) -> None:
        if self.flow_id not in self.link.scheduler.flows:
            self.link.scheduler.add_flow(self.flow_id, self.weight)
        self.joined = True
        CBRSource(
            self.sim,
            self.flow_id,
            self.ingress,
            rate=self.rate,
            packet_length=self.packet_length,
            start_time=self.sim.now,
            stop_time=self.stop,
        ).start()

    def _leave(self) -> None:
        if not self.joined:
            return
        self._leaving = True
        self._try_remove()

    def _on_departure(self, packet: Any, now: float) -> None:
        if self._leaving and packet.flow == self.flow_id:
            self._try_remove()

    def _try_remove(self) -> None:
        scheduler = self.link.scheduler
        if scheduler.flow_backlog(self.flow_id) > 0:
            return
        in_flight = self.link.in_flight
        if in_flight is not None and in_flight.flow == self.flow_id:
            return
        if self.flow_id in scheduler.flows:
            scheduler.remove_flow(self.flow_id)
        self._leaving = False
        self.removed = True


def run_schedule(
    schedule: ChaosSchedule,
    algorithm: str,
    fail_fast: bool = False,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ChaosReport:
    """Run ``schedule`` against ``algorithm`` under full monitoring.

    ``fail_fast=True`` raises the first
    :class:`~repro.faults.monitors.InvariantViolation` out of the
    simulation (debugging); the default records every violation and
    returns them in the report (campaigns, the shrinker's oracle).
    """
    ensure_fixture_registered(algorithm)
    sim = Simulator()
    streams = RandomStreams(derive_seed("chaos", "run", schedule.seed))
    scheduler = make_scheduler(
        algorithm, capacity=schedule.capacity, auto_register=False
    )
    link = Link(
        sim,
        scheduler,
        ConstantCapacity(schedule.capacity),
        name="chaos",
        tracer=NullTracer(),
    )

    reweights = schedule.events_of("reweight")
    bound_factor = CHECKED_FAIRNESS.get(algorithm, float("inf"))
    if reweights:
        bound_factor = float("inf")
    monitors: MonitorSuite = install_monitors(
        link,
        fail_fast=fail_fast,
        slack=1e-6,
        bound_factor=bound_factor,
    )

    # Ingress: packet-level faults (if scheduled) wrap the link.
    ingress: Ingress = link.send
    packet_faults: Optional[PacketFaults] = None
    for event in schedule.events_of("packet_faults"):
        packet_faults = PacketFaults(
            sim,
            link.send,
            streams=streams,
            p_loss=float(event.params["p_loss"]),
            p_reorder=float(event.params["p_reorder"]),
            max_reorder_delay=float(event.params["max_reorder_delay"]),
            name="chaos",
        )
        ingress = packet_faults.send
        break  # at most one whole-run packet-fault profile

    # Base traffic.
    for spec in schedule.flows:
        scheduler.add_flow(spec.flow_id, spec.weight)
        CBRSource(
            sim,
            spec.flow_id,
            ingress,
            rate=spec.rate,
            packet_length=spec.packet_length,
            start_time=spec.start,
            stop_time=schedule.duration,
            jitter=spec.jitter,
            rng=streams.stream(f"cbr:{spec.flow_id}")
            if spec.jitter > 0
            else None,
        ).start()

    # Fault events -> injectors. Each pause-driving event gets its own
    # injector (its own hold on the link's counted pause depth), so
    # overlapping windows compose instead of corrupting each other.
    outage_injectors: List[LinkOutage] = []
    stall_injectors: List[ServerStall] = []
    churn_windows: List[_ChurnWindow] = []
    for event in schedule.events:
        if event.kind == "outage":
            injector = LinkOutage(
                sim,
                link,
                schedule=[(event.at, float(event.params["up"]))],
                recovery=str(event.params["recovery"]),
            )
            injector.start()
            outage_injectors.append(injector)
        elif event.kind == "stall":
            stall = ServerStall(
                sim,
                link,
                schedule=[(event.at, float(event.params["duration"]))],
            )
            stall.start()
            stall_injectors.append(stall)
        elif event.kind == "churn":
            churn_windows.append(
                _ChurnWindow(
                    sim,
                    link,
                    ingress,
                    flow_id=str(event.params["flow"]),
                    weight=float(event.params["weight"]),
                    rate=float(event.params["rate"]),
                    packet_length=int(event.params["packet_length"]),
                    start=event.at,
                    stop=float(event.params["stop"]),
                )
            )

    reconfig: Optional[WeightReconfig] = None
    if reweights:
        fairness = monitors.fairness

        def _rebase(flow_id: Hashable, weight: float, now: float) -> None:
            if fairness is not None:
                fairness.rebase_flow(flow_id, now)

        reconfig = WeightReconfig(
            sim,
            link,
            events=[
                (e.at, str(e.params["flow"]), float(e.params["weight"]))
                for e in reweights
            ],
            on_reweight=_rebase,
        )
        reconfig.start()

    hub = hub_for("chaos")
    if hub.enabled:
        hub.counter("chaos_runs", algorithm).add()
        for event in schedule.events:
            hub.counter("chaos_fault_events", event.kind).add()

    sim.run(until=schedule.duration, max_events=max_events)
    monitors.audit()

    counts = {
        "outages": sum(i.outages for i in outage_injectors),
        "stalls": sum(i.stalls for i in stall_injectors),
        "reweights_applied": reconfig.applied if reconfig else 0,
        "reweights_skipped": reconfig.skipped if reconfig else 0,
        "churn_joins": sum(1 for w in churn_windows if w.joined),
        "churn_leaves": sum(1 for w in churn_windows if w.removed),
        "packets_lost": packet_faults.lost if packet_faults else 0,
        "packets_reordered": packet_faults.reordered if packet_faults else 0,
    }
    violations = monitors.violations_payload()
    if hub.enabled and violations:
        hub.counter("chaos_violation_runs", algorithm).add()
    return ChaosReport(
        algorithm=algorithm,
        schedule=schedule,
        violations=violations,
        transmitted=link.packets_transmitted,
        dropped=link.packets_dropped,
        max_gap=monitors.fairness.max_gap if monitors.fairness else 0.0,
        fairness_checked=bound_factor != float("inf"),
        truncated=sim.truncated,
        counts=counts,
    )
