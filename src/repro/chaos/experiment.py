"""Campaign-facing entry points for chaos runs.

:func:`run_chaos_case` adapts one ``(seed, algorithm)`` chaos run to
the :class:`ExperimentResult` contract the campaign runner shards and
aggregates — it is the ``"chaos"`` entry of the experiment registry.

:func:`run_composed_faults` is a fixed composed-fault scenario (link
outage + flow churn + packet loss/reordering, all simultaneously, on
one SFQ link) whose result carries a SHA-256 digest of the complete
delivery/drop trace. Two runs with the same seed must produce the same
digest regardless of worker count or process — the regression test for
injector composition determinism.
"""

from __future__ import annotations

import hashlib
from typing import Any, Hashable, List

from repro.chaos.runner import run_schedule
from repro.chaos.schedule import generate_schedule
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.faults.injectors import FlowChurn, LinkOutage, PacketFaults
from repro.faults.monitors import install_monitors
from repro.servers.base import ConstantCapacity
from repro.servers.link import Link
from repro.simulation.engine import Simulator
from repro.simulation.random import RandomStreams, derive_seed
from repro.simulation.tracing import NullTracer
from repro.traffic.cbr import CBRSource

__all__ = ["run_chaos_case", "run_composed_faults"]

CAPACITY = 1e6
PACKET_LENGTH = 8000


def run_chaos_case(
    seed: int = 0,
    algorithm: str = "SFQ",
    duration: float = 6.0,
) -> ExperimentResult:
    """One chaos run as an experiment: generate, run, report.

    ``data["violations"]`` holds the structured violation payloads and
    ``data["schedule"]`` the full fault schedule — everything a
    downstream shrink/replay needs, so campaign shards stay
    self-contained.
    """
    schedule = generate_schedule(seed, duration=duration)
    report = run_schedule(schedule, algorithm)
    result = ExperimentResult(
        experiment="chaos",
        description=(
            "Randomized fault campaign case: full injector zoo vs "
            f"{algorithm} under invariant monitors"
        ),
        headers=[
            "scheduler",
            "flows",
            "fault events",
            "transmitted",
            "dropped",
            "max gap (bits)",
            "violations",
        ],
    )
    result.add_row(
        algorithm,
        len(schedule.flows),
        schedule.event_count,
        report.transmitted,
        report.dropped,
        report.max_gap,
        len(report.violations),
    )
    kinds = {kind: len(schedule.events_of(kind)) for kind in
             ("outage", "stall", "reweight", "churn", "packet_faults")}
    result.note(
        f"seed {seed}: "
        + ", ".join(f"{n} {k}" for k, n in kinds.items() if n)
        + (
            "; fairness strictly checked"
            if report.fairness_checked
            else "; fairness measure-only"
        )
    )
    if report.violations:
        first = report.violations[0]
        result.note(
            f"FIRST VIOLATION: {first['invariant']} at t={first['time']:.4f}"
        )
    if report.truncated:
        result.note("TRUNCATED: event budget exhausted before the horizon")
    result.data["violations"] = list(report.violations)
    result.data["schedule"] = schedule.to_payload()
    result.data["counts"] = dict(report.counts)
    result.data["algorithm"] = algorithm
    result.data["seed"] = seed
    result.data["fairness_checked"] = report.fairness_checked
    result.data["truncated"] = report.truncated
    return result


def run_composed_faults(seed: int = 0, duration: float = 6.0) -> ExperimentResult:
    """Outage + churn + packet faults *simultaneously*, digest-stamped.

    Three fault injectors share one SFQ link: a seeded
    :class:`LinkOutage` (drop recovery), a two-flow :class:`FlowChurn`
    pool, and :class:`PacketFaults` loss/reordering at the ingress.
    The delivery and drop trace is folded into
    ``data["trace_digest"]``; equality of digests across runs, worker
    counts, and processes is the determinism contract.
    """
    sim = Simulator()
    streams = RandomStreams(derive_seed("chaos", "composed", seed))
    scheduler = make_scheduler("SFQ", capacity=CAPACITY, auto_register=False)
    link = Link(
        sim,
        scheduler,
        ConstantCapacity(CAPACITY),
        name="composed",
        tracer=NullTracer(),
    )
    # Measure-only fairness: churn joins/leaves change the flow set
    # mid-span, which is exactly what this scenario is *for*.
    monitors = install_monitors(link, slack=1e-6, bound_factor=float("inf"))

    trace: List[str] = []
    link.departure_hooks.append(
        lambda p, now: trace.append(f"tx {now:.9e} {p.flow} {p.seqno}")
    )
    link.drop_hooks.append(
        lambda p, now: trace.append(f"drop {now:.9e} {p.flow} {p.seqno}")
    )

    faults = PacketFaults(
        sim,
        link.send,
        streams=streams,
        p_loss=0.02,
        p_reorder=0.03,
        max_reorder_delay=0.01,
        name="composed",
    )
    for flow_id, weight in (("a", 1.0), ("b", 1.0), ("c", 2.0)):
        scheduler.add_flow(flow_id, weight)
        CBRSource(
            sim,
            flow_id,
            faults.send,
            rate=0.3 * CAPACITY * weight,
            packet_length=PACKET_LENGTH,
            stop_time=duration,
        ).start()

    outage = LinkOutage(
        sim,
        link,
        streams=streams,
        mean_time_to_failure=1.5,
        mean_outage=0.3,
        recovery="drop",
        stop_time=duration,
    )
    outage.start()

    def _make_source(flow_id: Hashable, start: float, stop: float) -> Any:
        return CBRSource(
            sim,
            flow_id,
            faults.send,
            rate=0.15 * CAPACITY,
            packet_length=PACKET_LENGTH,
            start_time=start,
            stop_time=stop,
        )

    churn = FlowChurn(
        sim,
        link,
        _make_source,
        streams=streams,
        flow_ids=("c0", "c1"),
        mean_on=0.8,
        mean_off=0.6,
        stop_time=duration,
        name="composed",
    )
    churn.start()

    sim.run(until=duration)
    monitors.audit()

    digest = hashlib.sha256("\n".join(trace).encode()).hexdigest()
    result = ExperimentResult(
        experiment="chaos-composed",
        description=(
            "Composed injectors (outage + churn + packet faults) on one "
            "SFQ link: deterministic delivery-trace digest"
        ),
        headers=[
            "transmitted",
            "dropped",
            "outages",
            "joins",
            "leaves",
            "lost",
            "reordered",
            "violations",
        ],
    )
    result.add_row(
        link.packets_transmitted,
        link.packets_dropped,
        outage.outages,
        churn.joins,
        churn.leaves,
        faults.lost,
        faults.reordered,
        len(monitors.violations),
    )
    result.note(f"trace digest {digest[:16]}… over {len(trace)} events")
    result.data["trace_digest"] = digest
    result.data["trace_events"] = len(trace)
    result.data["violations"] = monitors.violations_payload()
    result.data["seed"] = seed
    return result
