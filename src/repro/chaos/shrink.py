"""Failure minimization: ddmin over fault schedules, plus replay.

When a chaos run records an :class:`InvariantViolation`, the raw
schedule is a poor bug report — dozens of fault events, several flows,
seconds of simulated time, most of it irrelevant. :func:`shrink_failure`
minimizes it while preserving the *oracle* ("running this schedule
against this scheduler reproduces a violation of the same invariant"):

1. **ddmin over fault events** — classic delta debugging (Zeller &
   Hildebrandt): try ever-finer chunk subsets and complements of the
   event list, keeping any reduction that still fails;
2. **greedy flow removal** — drop base flows (and any fault event
   referencing them) while at least two remain and the failure
   persists;
3. **duration halving** — trim the simulated horizon while the
   violation still fires inside it;
4. **seed canonicalization** — prefer a small schedule seed (0–3) when
   any of them reproduces, so minimized artifacts are stable and
   human-comparable ("bisect seeds" in the small).

Every oracle invocation is one deterministic :func:`run_schedule`, so
the whole shrink is itself reproducible. The result serializes into a
``chaos-repro/1`` JSON artifact (:func:`write_artifact`) that
:func:`replay_artifact` — and ``python -m repro chaos replay <path>`` —
re-runs and checks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.chaos.fixtures import ensure_fixture_registered
from repro.chaos.runner import ChaosReport, run_schedule
from repro.chaos.schedule import ChaosSchedule, FaultEvent

__all__ = [
    "ShrinkResult",
    "ReplayOutcome",
    "shrink_failure",
    "write_artifact",
    "load_artifact",
    "replay_artifact",
    "ARTIFACT_SCHEMA",
]

ARTIFACT_SCHEMA = "chaos-repro/1"

#: Shortest horizon the duration-halving step will try (seconds).
MIN_DURATION = 0.25


@dataclass
class ShrinkResult:
    """A minimized failing schedule plus provenance."""

    schedule: ChaosSchedule
    algorithm: str
    invariant: str
    violation: Dict[str, Any]  # payload on the *minimized* schedule
    original_events: int
    original_flows: int
    original_duration: float
    original_seed: int
    oracle_runs: int

    @property
    def minimized_events(self) -> int:
        return self.schedule.event_count

    @property
    def minimized_flows(self) -> int:
        return len(self.schedule.flows)


class _Oracle:
    """Memoized failure check: schedule -> violation payload or None.

    Caches on the canonical schedule payload so ddmin's re-tests are
    free, and stops admitting *new* runs once ``max_runs`` is spent —
    the shrink then simply keeps its best-so-far reduction.
    """

    def __init__(self, algorithm: str, invariant: str, max_runs: int) -> None:
        self.algorithm = algorithm
        self.invariant = invariant
        self.max_runs = max_runs
        self.runs = 0
        self._cache: Dict[str, Optional[Dict[str, Any]]] = {}

    def __call__(self, schedule: ChaosSchedule) -> Optional[Dict[str, Any]]:
        key = json.dumps(schedule.to_payload(), sort_keys=True)
        if key in self._cache:
            return self._cache[key]
        if self.runs >= self.max_runs:
            return None  # budget spent: treat as not reproducing
        self.runs += 1
        report = run_schedule(schedule, self.algorithm)
        violation = report.first_violation(self.invariant)
        self._cache[key] = violation
        return violation


def _ddmin_events(
    schedule: ChaosSchedule, oracle: _Oracle
) -> ChaosSchedule:
    """Minimize ``schedule.events`` under the oracle (classic ddmin)."""
    if oracle(schedule.replace(events=[])) is not None:
        return schedule.replace(events=[])
    events: List[FaultEvent] = list(schedule.events)
    granularity = 2
    while len(events) >= 2:
        chunk = max(1, len(events) // granularity)
        reduced = False
        # Subsets first (fast path to tiny reproducers), then
        # complements (the classic reduce-to-complement step).
        candidates: List[List[FaultEvent]] = []
        for lo in range(0, len(events), chunk):
            candidates.append(events[lo : lo + chunk])
        for lo in range(0, len(events), chunk):
            candidates.append(events[:lo] + events[lo + chunk :])
        for candidate in candidates:
            if len(candidate) >= len(events):
                continue
            if oracle(schedule.replace(events=candidate)) is not None:
                events = candidate
                granularity = 2
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    return schedule.replace(events=events)


def _without_flow(schedule: ChaosSchedule, flow_id: str) -> ChaosSchedule:
    """Drop one base flow and every fault event referencing it."""
    return schedule.replace(
        flows=[f for f in schedule.flows if f.flow_id != flow_id],
        events=[
            e for e in schedule.events if e.params.get("flow") != flow_id
        ],
    )


def _shrink_flows(schedule: ChaosSchedule, oracle: _Oracle) -> ChaosSchedule:
    """Greedily remove base flows while the failure persists."""
    changed = True
    while changed and len(schedule.flows) > 2:
        changed = False
        for spec in list(schedule.flows):
            candidate = _without_flow(schedule, spec.flow_id)
            if len(candidate.flows) < 2:
                continue  # invariants need contention to mean anything
            if oracle(candidate) is not None:
                schedule = candidate
                changed = True
                break
    return schedule


def _shrink_duration(
    schedule: ChaosSchedule, oracle: _Oracle
) -> ChaosSchedule:
    """Halve the horizon while the violation still fires inside it."""
    while schedule.duration / 2 >= MIN_DURATION:
        candidate = schedule.replace(duration=schedule.duration / 2)
        if oracle(candidate) is None:
            break
        schedule = candidate
    return schedule


def _canonicalize_seed(
    schedule: ChaosSchedule, oracle: _Oracle
) -> ChaosSchedule:
    """Prefer the smallest schedule seed that still reproduces."""
    for seed in range(4):
        if seed == schedule.seed:
            break
        candidate = schedule.replace(seed=seed)
        if oracle(candidate) is not None:
            return candidate
    return schedule


def shrink_failure(
    schedule: ChaosSchedule,
    algorithm: str,
    invariant: Optional[str] = None,
    max_oracle_runs: int = 300,
) -> ShrinkResult:
    """Minimize a failing schedule to a small deterministic reproducer.

    ``invariant=None`` takes the first violation the unshrunk schedule
    produces. Raises ``ValueError`` when the schedule does not fail at
    all — a shrinker that "minimizes" a passing input hides harness
    bugs.
    """
    baseline = run_schedule(schedule, algorithm)
    first = baseline.first_violation(invariant)
    if first is None:
        raise ValueError(
            f"schedule (seed={schedule.seed}) produces no "
            f"{invariant or 'invariant'} violation on {algorithm}; "
            "nothing to shrink"
        )
    target = str(first["invariant"])
    oracle = _Oracle(algorithm, target, max_oracle_runs)

    shrunk = _ddmin_events(schedule, oracle)
    shrunk = _shrink_flows(shrunk, oracle)
    shrunk = _shrink_duration(shrunk, oracle)
    shrunk = _canonicalize_seed(shrunk, oracle)

    violation = oracle(shrunk)
    assert violation is not None  # every kept reduction passed the oracle
    return ShrinkResult(
        schedule=shrunk,
        algorithm=algorithm,
        invariant=target,
        violation=violation,
        original_events=schedule.event_count,
        original_flows=len(schedule.flows),
        original_duration=schedule.duration,
        original_seed=schedule.seed,
        oracle_runs=oracle.runs,
    )


# ---------------------------------------------------------------------------
# Artifacts: serialize, load, replay
# ---------------------------------------------------------------------------


def write_artifact(result: ShrinkResult, path: Path) -> Path:
    """Serialize a minimized reproducer as a ``chaos-repro/1`` file."""
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "algorithm": result.algorithm,
        "invariant": result.invariant,
        "violation": result.violation,
        "schedule": result.schedule.to_payload(),
        "original": {
            "seed": result.original_seed,
            "events": result.original_events,
            "flows": result.original_flows,
            "duration": result.original_duration,
        },
        "shrink": {
            "events": result.minimized_events,
            "flows": result.minimized_flows,
            "oracle_runs": result.oracle_runs,
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: Path) -> Dict[str, Any]:
    """Read and schema-check a ``chaos-repro/1`` artifact."""
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path}: unknown artifact schema {schema!r} "
            f"(expected {ARTIFACT_SCHEMA})"
        )
    return payload


@dataclass
class ReplayOutcome:
    """What replaying an artifact produced."""

    artifact: Dict[str, Any]
    report: ChaosReport
    #: a violation of the artifact's invariant fired again
    reproduced: bool
    #: ... with a payload byte-identical to the recorded one
    exact: bool

    def describe(self) -> str:
        a = self.artifact
        status = (
            "reproduced exactly"
            if self.exact
            else "reproduced" if self.reproduced else "DID NOT REPRODUCE"
        )
        return (
            f"{a['algorithm']} / {a['invariant']}: {status} "
            f"({len(self.report.violations)} violation(s); schedule: "
            f"{len(a['schedule']['events'])} events, "
            f"{len(a['schedule']['flows'])} flows, "
            f"{a['schedule']['duration']:.3g}s, seed {a['schedule']['seed']})"
        )


def replay_artifact(path: Path) -> ReplayOutcome:
    """Re-run a serialized reproducer and check it still fails.

    ``reproduced`` asserts the invariant class fired again (robust to
    incidental float drift across future code changes); ``exact``
    additionally requires the recorded violation payload verbatim.
    """
    artifact = load_artifact(path)
    algorithm = str(artifact["algorithm"])
    ensure_fixture_registered(algorithm)
    schedule = ChaosSchedule.from_payload(artifact["schedule"])
    report = run_schedule(schedule, algorithm)
    invariant = str(artifact["invariant"])
    matching = [
        v for v in report.violations if v["invariant"] == invariant
    ]
    return ReplayOutcome(
        artifact=artifact,
        report=report,
        reproduced=bool(matching),
        exact=artifact["violation"] in matching,
    )
