"""Fault-schedule generation: the randomized half of chaos testing.

A :class:`ChaosSchedule` is a complete, self-contained description of
one faulted run — topology (one link at a fixed capacity), traffic
(CBR flows with weights, rates and start times), and a time-ordered
list of :class:`FaultEvent`\\ s drawn from the full injector zoo
(:mod:`repro.faults`): link outages, server stalls, mid-run
re-weightings, flow churn windows, and packet-level loss/reordering.

Everything is rooted at a single integer seed through
:func:`repro.simulation.random.derive_seed`, so a schedule is a pure
function of its seed: ``generate_schedule(7)`` produces byte-identical
payloads on every machine, worker count, and Python process. That is
what makes a chaos *campaign* shardable (the campaign runner fans
seeds across workers) and a chaos *failure* reproducible (the shrinker
serializes the schedule and replays it deterministically).

Schedules round-trip losslessly through :meth:`ChaosSchedule.to_payload`
/ :meth:`ChaosSchedule.from_payload` — the shrinker edits payload-level
copies and the replay artifact embeds one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.simulation.random import RandomStreams, derive_seed

__all__ = [
    "FlowSpec",
    "FaultEvent",
    "ChaosSchedule",
    "generate_schedule",
    "EVENT_KINDS",
]

#: Every fault-event kind a schedule may contain, with its params:
#:
#: ``outage``        ``{"up": t, "recovery": "replay"|"drop"}`` (at = down)
#: ``stall``         ``{"duration": d}`` (at = freeze start)
#: ``reweight``      ``{"flow": id, "weight": w}`` (at = apply time)
#: ``churn``         ``{"flow": id, "stop": t, "weight": w, "rate": r,
#:                   "packet_length": l}`` (at = join time)
#: ``packet_faults`` ``{"p_loss": p, "p_reorder": p,
#:                   "max_reorder_delay": d}`` (at = 0, whole-run)
EVENT_KINDS = ("outage", "stall", "reweight", "churn", "packet_faults")


@dataclass(frozen=True)
class FlowSpec:
    """One base CBR flow of a chaos topology."""

    flow_id: str
    weight: float
    rate: float  # bits/s offered
    packet_length: int  # bits
    start: float = 0.0
    jitter: float = 0.0  # CBR inter-packet jitter fraction (0 = exact)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "flow_id": self.flow_id,
            "weight": self.weight,
            "rate": self.rate,
            "packet_length": self.packet_length,
            "start": self.start,
            "jitter": self.jitter,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FlowSpec":
        return cls(
            flow_id=str(payload["flow_id"]),
            weight=float(payload["weight"]),
            rate=float(payload["rate"]),
            packet_length=int(payload["packet_length"]),
            start=float(payload.get("start", 0.0)),
            jitter=float(payload.get("jitter", 0.0)),
        )


@dataclass(frozen=True)
class FaultEvent:
    """One fault of a chaos schedule (see :data:`EVENT_KINDS`)."""

    kind: str
    at: float
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {EVENT_KINDS}"
            )

    def to_payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at, "params": dict(self.params)}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FaultEvent":
        return cls(
            kind=str(payload["kind"]),
            at=float(payload["at"]),
            params=dict(payload.get("params", {})),
        )


@dataclass(frozen=True)
class ChaosSchedule:
    """A complete faulted-run description (topology + traffic + faults)."""

    seed: int
    duration: float
    capacity: float
    flows: List[FlowSpec]
    events: List[FaultEvent]

    @property
    def event_count(self) -> int:
        return len(self.events)

    def events_of(self, kind: str) -> List[FaultEvent]:
        return [e for e in self.events if e.kind == kind]

    def replace(self, **overrides: Any) -> "ChaosSchedule":
        """A copy with ``overrides`` applied (lists are not shared)."""
        out = replace(self, **overrides)
        return replace(out, flows=list(out.flows), events=list(out.events))

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": "chaos-schedule/1",
            "seed": self.seed,
            "duration": self.duration,
            "capacity": self.capacity,
            "flows": [f.to_payload() for f in self.flows],
            "events": [e.to_payload() for e in self.events],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ChaosSchedule":
        schema = payload.get("schema")
        if schema != "chaos-schedule/1":
            raise ValueError(f"unknown ChaosSchedule schema {schema!r}")
        return cls(
            seed=int(payload["seed"]),
            duration=float(payload["duration"]),
            capacity=float(payload["capacity"]),
            flows=[FlowSpec.from_payload(f) for f in payload["flows"]],
            events=[FaultEvent.from_payload(e) for e in payload["events"]],
        )


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

_PACKET_LENGTHS = (4000, 8000, 12000)
_WEIGHTS = (0.5, 1.0, 1.0, 2.0)
_REWEIGHT_FACTORS = (0.5, 0.75, 1.5, 2.0)


def generate_schedule(
    seed: int,
    duration: float = 6.0,
    capacity: float = 1e6,
) -> ChaosSchedule:
    """Sample one chaos schedule — a pure function of ``seed``.

    The topology is a single link at ``capacity`` bits/s carrying 2–4
    CBR flows whose aggregate offered load is drawn around the link
    rate (0.8–1.2×), so queues build and the fairness monitor sees real
    common-backlog spans. Flow 0 starts at t=0; every later flow starts
    strictly after — the late joiner is exactly the arrival pattern the
    virtual-time restart rule (and its classic bug, dropping the
    ``max`` in the start-tag computation) is sensitive to.

    Fault mix per schedule: 1–3 link outages (replay or drop recovery),
    6–14 short server stalls (freely overlapping the outages — counted
    pause composition), 0 or 2–8 re-weightings of base flows, 0–2 churn
    windows, and (60% of seeds) whole-run packet loss/reordering.

    All draws come from the single stream ``"generate"`` of
    ``RandomStreams(derive_seed("chaos", "schedule", seed))`` in a fixed
    order, so the schedule depends on nothing but the seed.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    rng = RandomStreams(derive_seed("chaos", "schedule", seed)).stream(
        "generate"
    )

    # --- traffic ----------------------------------------------------------
    n_flows = rng.randint(2, 4)
    weights = [rng.choice(_WEIGHTS) for _ in range(n_flows)]
    total_weight = sum(weights)
    load = rng.uniform(0.8, 1.2)  # aggregate offered load / capacity
    flows: List[FlowSpec] = []
    for i in range(n_flows):
        share = weights[i] / total_weight
        rate = load * capacity * share * rng.uniform(0.85, 1.15)
        start = 0.0 if i == 0 else rng.uniform(0.05, 0.25) * duration
        flows.append(
            FlowSpec(
                flow_id=f"f{i}",
                weight=weights[i],
                rate=rate,
                packet_length=rng.choice(_PACKET_LENGTHS),
                start=start,
                jitter=rng.choice((0.0, 0.1)),
            )
        )

    events: List[FaultEvent] = []

    # --- link outages (non-overlapping among themselves) ------------------
    n_outages = rng.randint(1, 3)
    t = rng.uniform(0.1, 0.3) * duration
    for _ in range(n_outages):
        span = rng.uniform(0.1, 0.4)
        if t + span >= duration * 0.9:
            break
        events.append(
            FaultEvent(
                "outage",
                t,
                {
                    "up": t + span,
                    "recovery": rng.choice(("replay", "drop")),
                },
            )
        )
        t += span + rng.uniform(0.4, 1.2)

    # --- server stalls (may overlap outages and each other) ---------------
    for _ in range(rng.randint(6, 14)):
        events.append(
            FaultEvent(
                "stall",
                rng.uniform(0.05, 0.95) * duration,
                {"duration": rng.uniform(0.01, 0.06)},
            )
        )

    # --- re-weightings (absent on ~40% of seeds so Theorem 1 stays
    # strictly checkable on those schedules — see repro.chaos.runner) ------
    if rng.random() < 0.6:
        for _ in range(rng.randint(2, 8)):
            victim = rng.randrange(n_flows)
            events.append(
                FaultEvent(
                    "reweight",
                    rng.uniform(0.3, 0.9) * duration,
                    {
                        "flow": flows[victim].flow_id,
                        "weight": flows[victim].weight
                        * rng.choice(_REWEIGHT_FACTORS),
                    },
                )
            )

    # --- churn windows ----------------------------------------------------
    for i in range(rng.randint(0, 2)):
        join = rng.uniform(0.2, 0.5) * duration
        stay = rng.uniform(0.15, 0.4) * duration
        events.append(
            FaultEvent(
                "churn",
                join,
                {
                    "flow": f"churn{i}",
                    "stop": join + stay,
                    "weight": rng.choice((0.5, 1.0)),
                    "rate": rng.uniform(0.1, 0.3) * capacity,
                    "packet_length": rng.choice(_PACKET_LENGTHS),
                },
            )
        )

    # --- packet-level faults (whole-run) ----------------------------------
    if rng.random() < 0.6:
        events.append(
            FaultEvent(
                "packet_faults",
                0.0,
                {
                    "p_loss": rng.uniform(0.0, 0.05),
                    "p_reorder": rng.uniform(0.0, 0.05),
                    "max_reorder_delay": rng.uniform(0.005, 0.02),
                },
            )
        )

    events.sort(key=lambda e: (e.at, e.kind))
    return ChaosSchedule(
        seed=int(seed),
        duration=float(duration),
        capacity=float(capacity),
        flows=flows,
        events=events,
    )
