"""Chaos campaign mode: schedule × scheduler-zoo × seed grids.

:func:`run_chaos_campaign` fans a grid of ``(algorithm, seed slot)``
chaos shards through the ordinary campaign runner
(:mod:`repro.experiments.campaign`) — same sharding, caching, worker
pool, retry backoff, and partial aggregation as every other
experiment — then sweeps the outcomes for invariant violations. Every
failure is (optionally) minimized with the ddmin shrinker and
serialized as a replayable ``chaos-repro/1`` artifact under
``<results>/chaos/``.

The healthy path — the stock scheduler zoo — must come back with zero
violations; the CI ``chaos-smoke`` job asserts exactly that, and then
separately asserts that a known-bad fixture *is* caught, shrunk, and
reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.chaos.runner import DEFAULT_ZOO
from repro.chaos.schedule import ChaosSchedule
from repro.chaos.shrink import shrink_failure, write_artifact
from repro.experiments.campaign import CampaignResult, run_campaign

__all__ = ["ChaosFailure", "ChaosCampaignResult", "run_chaos_campaign"]

#: The experiment registry target every chaos shard runs.
CHAOS_TARGET = "repro.chaos.experiment:run_chaos_case"


@dataclass
class ChaosFailure:
    """One ``(algorithm, seed)`` cell that violated an invariant."""

    algorithm: str
    seed: int
    invariant: str
    violations: int
    first_time: float
    artifact: Optional[Path] = None  # minimized reproducer, if shrunk
    shrink_events: Optional[int] = None
    original_events: Optional[int] = None

    def describe(self) -> str:
        text = (
            f"{self.algorithm} seed={self.seed}: {self.violations} "
            f"{self.invariant} violation(s), first at t={self.first_time:.4f}"
        )
        if self.artifact is not None:
            text += (
                f" -> {self.artifact} "
                f"({self.original_events}->{self.shrink_events} events)"
            )
        return text


@dataclass
class ChaosCampaignResult:
    """Campaign outcomes plus the distilled chaos verdict."""

    campaign: CampaignResult
    failures: List[ChaosFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.campaign.failures

    def describe(self) -> str:
        s = self.campaign.stats
        lines = [
            f"chaos campaign: {s['shards']} runs ({s['ok']} ok, "
            f"{s['failed']} failed shards, {s['cached']} cached), "
            f"{len(self.failures)} run(s) with invariant violations, "
            f"{self.campaign.wall_s:.2f}s wall"
        ]
        lines.extend(f"  VIOLATION {f.describe()}" for f in self.failures)
        for outcome in self.campaign.failures:
            lines.append(
                f"  FAILED shard {outcome.shard.describe()} "
                f"({outcome.status})"
            )
        return "\n".join(lines)


def run_chaos_campaign(
    schedulers: Sequence[str] = DEFAULT_ZOO,
    *,
    seeds: int = 5,
    jobs: int = 1,
    base_seed: int = 0,
    duration: float = 6.0,
    cache: bool = True,
    results_dir: str = "results",
    timeout: Optional[float] = None,
    shrink: bool = True,
    max_oracle_runs: int = 300,
    progress: Optional[Callable[[str], None]] = None,
    metrics: bool = False,
) -> ChaosCampaignResult:
    """Run the chaos grid and shrink every failure it surfaces.

    Each shard's schedule seed is the campaign-derived shard seed, so
    the grid is a pure function of ``(schedulers, seeds, base_seed,
    duration)`` — identical across worker counts and re-runs, and each
    cell is independently reproducible from its recorded schedule.
    """
    grids: Dict[str, List[Dict[str, Any]]] = {
        "chaos": [
            {"algorithm": name, "duration": duration} for name in schedulers
        ]
    }
    campaign = run_campaign(
        ["chaos"],
        seeds=seeds,
        jobs=jobs,
        base_seed=base_seed,
        cache=cache,
        results_dir=results_dir,
        timeout=timeout,
        grids=grids,
        targets={"chaos": CHAOS_TARGET},
        accepts_seed=frozenset({"chaos"}),
        progress=progress,
        metrics=metrics,
    )

    failures: List[ChaosFailure] = []
    artifact_dir = Path(results_dir) / "chaos"
    for outcome in campaign.outcomes:
        if not outcome.ok or outcome.result is None:
            continue
        data = outcome.result.data
        violations = data.get("violations") or []
        if not violations:
            continue
        first = violations[0]
        algorithm = str(data["algorithm"])
        seed = int(data["seed"])
        failure = ChaosFailure(
            algorithm=algorithm,
            seed=seed,
            invariant=str(first["invariant"]),
            violations=len(violations),
            first_time=float(first["time"]),
        )
        if shrink:
            schedule = ChaosSchedule.from_payload(data["schedule"])
            if progress is not None:
                progress(f"shrinking {algorithm} seed={seed} ...")
            result = shrink_failure(
                schedule,
                algorithm,
                invariant=failure.invariant,
                max_oracle_runs=max_oracle_runs,
            )
            failure.artifact = write_artifact(
                result, artifact_dir / f"repro_{algorithm}_{seed}.json"
            )
            failure.shrink_events = result.minimized_events
            failure.original_events = result.original_events
        failures.append(failure)
    return ChaosCampaignResult(campaign=campaign, failures=failures)
