"""Deterministic chaos testing for the scheduler zoo.

``repro.chaos`` drives randomized fault campaigns — seeded
compositions of link outages, server stalls, mid-run re-weightings,
flow churn, and packet loss/reordering — against every registered
scheduling discipline, with the full invariant monitor suite
(:mod:`repro.faults.monitors`) watching each run. Layers:

* :mod:`~repro.chaos.schedule` — seed -> :class:`ChaosSchedule`
  (topology + traffic + time-ordered fault events), byte-reproducible;
* :mod:`~repro.chaos.runner` — materialize one schedule against one
  discipline, returning a :class:`ChaosReport`;
* :mod:`~repro.chaos.campaign` — fan a schedulers × seeds grid through
  the campaign runner, shrinking every failure;
* :mod:`~repro.chaos.shrink` — ddmin failure minimizer + replayable
  ``chaos-repro/1`` artifacts;
* :mod:`~repro.chaos.fixtures` — deliberately broken disciplines the
  harness must catch (its own regression oracle);
* :mod:`~repro.chaos.experiment` — :class:`ExperimentResult` adapters
  for the experiment registry (``python -m repro run chaos``).

CLI: ``python -m repro chaos --seeds 25`` (campaign) and
``python -m repro chaos replay results/chaos/repro_X_N.json``.
"""

from repro.chaos.campaign import (
    ChaosCampaignResult,
    ChaosFailure,
    run_chaos_campaign,
)
from repro.chaos.fixtures import (
    BrokenSFQ,
    ensure_fixture_registered,
    is_fixture,
)
from repro.chaos.runner import (
    CHECKED_FAIRNESS,
    DEFAULT_ZOO,
    ChaosReport,
    run_schedule,
)
from repro.chaos.schedule import (
    EVENT_KINDS,
    ChaosSchedule,
    FaultEvent,
    FlowSpec,
    generate_schedule,
)
from repro.chaos.shrink import (
    ReplayOutcome,
    ShrinkResult,
    load_artifact,
    replay_artifact,
    shrink_failure,
    write_artifact,
)

__all__ = [
    "BrokenSFQ",
    "CHECKED_FAIRNESS",
    "ChaosCampaignResult",
    "ChaosFailure",
    "ChaosReport",
    "ChaosSchedule",
    "DEFAULT_ZOO",
    "EVENT_KINDS",
    "FaultEvent",
    "FlowSpec",
    "ReplayOutcome",
    "ShrinkResult",
    "ensure_fixture_registered",
    "generate_schedule",
    "is_fixture",
    "load_artifact",
    "replay_artifact",
    "run_chaos_campaign",
    "run_schedule",
    "shrink_failure",
    "write_artifact",
]
