"""Deliberately broken schedulers for harness validation.

A chaos harness that has never caught anything proves nothing: these
fixtures are known-bad disciplines the campaign *must* flag, used by
the test suite and the CI ``chaos-smoke`` job to demonstrate that the
monitors fire, the shrinker minimizes, and the replay artifact
reproduces.

:class:`BrokenSFQ` is SFQ with the classic start-tag bug — the
``max(v, last_finish)`` clamp dropped, so a flow that was idle (or
joined late) gets start tags from its stale ``last_finish`` chain.
Serving such a packet drags the system virtual time *backwards*, which
the :class:`repro.faults.monitors.VirtualTimeMonitor` detects on plain
multi-flow traffic with a single late-starting flow — no fault events
required, which is why the shrinker can typically minimize a BrokenSFQ
failure all the way to an empty fault list.

Fixtures are registered into the scheduler registry on demand (never
at import of :mod:`repro.chaos`), so ordinary experiments and the
stock zoo never see them unless a test or replay asks.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.core.base import Scheduler
from repro.core.flow import FlowState
from repro.core.packet import Packet
from repro.core.registry import (
    SchedulerSpec,
    available_schedulers,
    register_scheduler,
    scheduler_spec,
)
from repro.core.sfq import SFQ

__all__ = ["BrokenSFQ", "FIXTURES", "ensure_fixture_registered", "is_fixture"]


class BrokenSFQ(SFQ):
    """SFQ with the start-tag ``max`` dropped (a seeded mutation).

    Correct SFQ stamps ``S = max(v(t), F(p^{j-1}))``; this fixture
    stamps ``S = F(p^{j-1})`` only. A continuously backlogged flow
    never notices, but the first packet after any idle period (a late
    start, a churn re-join) is tagged in the past — violating the
    virtual-time monotonicity invariant the moment it is served.
    """

    __slots__ = ()

    algorithm = "BrokenSFQ"

    def _tag_packet(self, state: FlowState, packet: Packet, now: float) -> float:
        start = state.last_finish  # BUG (deliberate): max(self.v, ...) dropped
        rate = packet.rate
        finish = start + packet.length / (state._weight if rate is None else rate)
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        return start


#: fixture name -> (scheduler class, name of the registered discipline
#: whose constructor surface it shares). Every entry self-identifies
#: via ``algorithm`` so reports show the fixture name, not "SFQ".
FIXTURES: Dict[str, Tuple[Type[Scheduler], str]] = {
    "BrokenSFQ": (BrokenSFQ, "SFQ"),
}


def is_fixture(name: str) -> bool:
    """True when ``name`` is a known-bad fixture discipline."""
    return name in FIXTURES


def ensure_fixture_registered(name: str) -> bool:
    """Register fixture ``name`` with the scheduler registry, once.

    Returns True when ``name`` is a fixture (registered now or
    earlier), False for ordinary discipline names — callers can invoke
    this unconditionally before :func:`repro.make_scheduler`.
    """
    entry = FIXTURES.get(name)
    if entry is None:
        return False
    cls, like = entry
    if name not in available_schedulers():
        base = scheduler_spec(like)
        register_scheduler(
            SchedulerSpec(
                name,
                cls,
                f"chaos fixture: deliberately broken {like} "
                "(see repro.chaos.fixtures)",
                needs_capacity=base.needs_capacity,
                params=base.params,
            )
        )
    return True
