"""Online metrics & telemetry (``repro.metrics``).

Low-overhead streaming observability for production-scale runs, where
the full packet traces of :mod:`repro.simulation.tracing` are too
heavy. The subsystem follows the ``NullTracer`` discipline: every
server holds a hub and guards updates with ``if metrics.enabled:``, so
the default (no session active, null hub) costs one attribute read per
packet — verified byte-identical against the frozen seed traces by
``tests/test_trace_equivalence.py`` and benchmarked in
``BENCH_schedulers.json``.

Typical use::

    from repro.metrics import MetricsSession

    with MetricsSession() as session:
        run_experiment("figure1")          # Links self-register hubs
        snap = session.snapshot({"experiment": "figure1"})
    snap.write(Path("results/metrics"), "figure1")

or from the command line::

    python -m repro metrics figure1
    python -m repro run figure1 --metrics
    python -m repro campaign figure1 --metrics   # shard snapshots merge

Layers:

* :mod:`~repro.metrics.instruments` — Counter, Gauge, log-scale
  Histogram, windowed RateMeter; constant memory, lossless payloads,
  shard-mergeable.
* :mod:`~repro.metrics.hub` — per-server instrument registry with the
  hot-path flow cache and the ``enabled`` guard flag.
* :mod:`~repro.metrics.session` — ambient collection scope wiring hubs
  into servers without touching experiment signatures.
* :mod:`~repro.metrics.snapshot` — schema-versioned JSON/CSV export
  (``metrics-snapshot/1``) with lossless reload and shard merge.
"""

from repro.metrics.hub import (
    DEFAULT_RATE_WINDOW,
    NULL_METRICS,
    MetricsHub,
    NullMetricsHub,
)
from repro.metrics.instruments import (
    Counter,
    Gauge,
    Histogram,
    RateMeter,
    decode_label,
    encode_label,
)
from repro.metrics.session import MetricsSession, active_session, hub_for
from repro.metrics.snapshot import Snapshot

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "RateMeter",
    "MetricsHub",
    "NullMetricsHub",
    "NULL_METRICS",
    "DEFAULT_RATE_WINDOW",
    "MetricsSession",
    "Snapshot",
    "active_session",
    "hub_for",
    "encode_label",
    "decode_label",
]
