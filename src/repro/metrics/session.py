"""Ambient metrics collection: MetricsSession and hub_for().

Experiments build their own networks deep inside their run functions,
so threading a metrics object through every ``Link(...)`` call would
touch every experiment signature. Instead collection is *ambient*:
server constructors ask :func:`hub_for` for their hub. With no session
active (the default — and always the case for the frozen-trace
equivalence runs) that returns the shared :data:`~repro.metrics.hub.
NULL_METRICS` hub whose ``enabled`` flag is False, so the servers'
per-packet guards all short-circuit. Inside a ``with MetricsSession()
as session:`` block each distinct server name gets a live
:class:`~repro.metrics.hub.MetricsHub` registered on the session, and
``session.snapshot()`` collects them into an exportable
:class:`~repro.metrics.snapshot.Snapshot`.

Sessions nest by shadowing: entering a session saves the previously
active one and restores it on exit, so a metrics-enabled experiment can
safely call library code that opens its own session. The active-session
slot is per-process; campaign workers each run shards sequentially in
their own process, so ambient state never crosses shard boundaries.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.metrics.hub import DEFAULT_RATE_WINDOW, NULL_METRICS, MetricsHub
from repro.metrics.snapshot import Snapshot

__all__ = ["MetricsSession", "active_session", "hub_for"]

_ACTIVE: Optional["MetricsSession"] = None


class MetricsSession:
    """A collection scope: every server built inside gets a live hub."""

    def __init__(self, rate_window: float = DEFAULT_RATE_WINDOW) -> None:
        self.rate_window = float(rate_window)
        self.hubs: List[MetricsHub] = []
        self._names: Dict[str, int] = {}
        self._previous: Optional[MetricsSession] = None

    def hub(self, name: str) -> MetricsHub:
        """A fresh hub registered under ``name``.

        Distinct servers sometimes share a default name (several
        ``Link(..., name="link")`` in one topology); repeats get a
        deterministic ``#2``, ``#3``, ... suffix so snapshots never
        silently mix two servers' instruments.
        """
        seen = self._names.get(name, 0) + 1
        self._names[name] = seen
        unique = name if seen == 1 else f"{name}#{seen}"
        hub = MetricsHub(unique, self.rate_window)
        self.hubs.append(hub)
        return hub

    def snapshot(self, meta: Optional[Dict[str, Any]] = None) -> Snapshot:
        """Collect every registered hub into a :class:`Snapshot`."""
        return Snapshot(
            meta=dict(meta or {}),
            hubs={hub.name: hub for hub in self.hubs},
        )

    def __enter__(self) -> "MetricsSession":
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, *exc: object) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None


def active_session() -> Optional[MetricsSession]:
    """The innermost active session, if any."""
    return _ACTIVE


def hub_for(name: str) -> MetricsHub:
    """The hub a server named ``name`` should use right now.

    A live hub registered on the active session, or the shared null hub
    (``enabled`` False) when no session is active. Server constructors
    call this when not handed an explicit ``metrics`` argument.
    """
    if _ACTIVE is None:
        return NULL_METRICS
    return _ACTIVE.hub(name)
