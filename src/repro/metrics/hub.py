"""MetricsHub: a per-server registry of online instruments.

A hub follows the ``NullTracer`` pattern from
:mod:`repro.simulation.tracing`: hot-path call sites guard every update
with ``if metrics.enabled:``, so a server wired to the
:data:`NULL_METRICS` singleton (the default) pays one attribute read
per packet and nothing else. When a :class:`~repro.metrics.session.
MetricsSession` is active, servers get a live hub and the same guard
routes arrivals, departures, and drops into constant-memory instruments
(:mod:`repro.metrics.instruments`).

The per-flow hot path avoids repeated registry lookups with a handle
cache (:class:`_FlowHandles`): the first packet of a flow resolves its
six counters, two histograms and rate meter once; every later packet is
a single dict get plus a handful of arithmetic updates.

Standard instrument catalog (what :meth:`MetricsHub.on_arrival` and
friends populate; see HACKING.md "Metrics" for the full description):

=====================  =========  ======  ==================================
family                 kind       label   meaning
=====================  =========  ======  ==================================
``packets_arrived``    counter    flow    accepted arrivals
``bits_arrived``       counter    flow    accepted arrival bits
``packets_served``     counter    flow    departures
``bits_served``        counter    flow    departed bits
``packets_dropped``    counter    flow    drops (buffer/evict/outage)
``bits_dropped``       counter    flow    dropped bits
``delay``              histogram  flow    arrival->departure delay (s)
``packet_length``      histogram  flow    accepted packet lengths (bits)
``throughput``         ratemeter  flow    departed bits per window
``link_throughput``    ratemeter  --      all departed bits per window
``queue_depth``        gauge      --      scheduler backlog (packets)
``backlog_bits``       gauge      --      scheduler backlog (bits)
=====================  =========  ======  ==================================

Servers and monitors may also register ad-hoc instruments through the
generic accessors (:meth:`counter`, :meth:`gauge`, :meth:`histogram`,
:meth:`rate_meter`) — e.g. the fault monitors count invariant
violations as ``invariant_violations{monitor}``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, List, Optional, Tuple, Type, Union

from repro.metrics.instruments import (
    Counter,
    Gauge,
    Histogram,
    RateMeter,
    decode_label,
    encode_label,
)

__all__ = [
    "MetricsHub",
    "NullMetricsHub",
    "NULL_METRICS",
    "DEFAULT_RATE_WINDOW",
    "DELAY_HISTOGRAM",
    "LENGTH_HISTOGRAM",
]

Instrument = Union[Counter, Gauge, Histogram, RateMeter]

#: Payload schema identifier (bump on incompatible layout changes).
SCHEMA = "metrics-hub/1"

#: Default RateMeter window (seconds of simulation time). Figure 1/2
#: runs last O(1..10) simulated seconds, so 100 ms windows give a
#: usable utilization curve without storing per-packet state.
DEFAULT_RATE_WINDOW = 0.1

#: Delay histogram layout: 64 geometric buckets over 1 us .. 1000 s.
DELAY_HISTOGRAM = (1e-6, 1e3, 64)

#: Packet-length histogram layout: 40 geometric buckets over
#: 8 bits .. 10 Mbit (covers every packet size the experiments use).
LENGTH_HISTOGRAM = (8.0, 1e7, 40)

_KINDS: Dict[str, Type[Instrument]] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "ratemeter": RateMeter,
}


def _label_sort_key(label: Hashable) -> str:
    """Deterministic ordering for mixed-type labels in payloads."""
    return json.dumps(encode_label(label), sort_keys=True)


class _FlowHandles:
    """Resolved per-flow instruments — one registry lookup per flow,
    not per packet."""

    __slots__ = (
        "packets_arrived",
        "bits_arrived",
        "packets_served",
        "bits_served",
        "packets_dropped",
        "bits_dropped",
        "delay",
        "packet_length",
        "throughput",
    )

    def __init__(self, hub: "MetricsHub", flow: Hashable) -> None:
        self.packets_arrived = hub.counter("packets_arrived", flow)
        self.bits_arrived = hub.counter("bits_arrived", flow)
        self.packets_served = hub.counter("packets_served", flow)
        self.bits_served = hub.counter("bits_served", flow)
        self.packets_dropped = hub.counter("packets_dropped", flow)
        self.bits_dropped = hub.counter("bits_dropped", flow)
        lo, hi, bins = DELAY_HISTOGRAM
        self.delay = hub.histogram("delay", flow, lo=lo, hi=hi, bins=bins)
        lo, hi, bins = LENGTH_HISTOGRAM
        self.packet_length = hub.histogram(
            "packet_length", flow, lo=lo, hi=hi, bins=bins
        )
        self.throughput = hub.rate_meter("throughput", flow)


class MetricsHub:
    """Registry of named instrument families for one server.

    A *family* is a named set of same-kind instruments keyed by label
    (the per-flow dimension); unlabeled instruments use ``None``. The
    generic accessors create instruments on first use and return the
    existing one afterwards, so call sites never need registration
    boilerplate. Payload round-trip and shard merging work family- and
    label-wise.
    """

    __slots__ = (
        "name",
        "rate_window",
        "_families",
        "_flow_cache",
        "_link_throughput",
        "_queue_depth",
        "_backlog_bits",
    )

    #: Hot-path guard, in the style of ``Tracer.enabled``. Class-level
    #: so ``if metrics.enabled:`` on the null hub is one attribute read.
    enabled = True

    def __init__(self, name: str, rate_window: float = DEFAULT_RATE_WINDOW) -> None:
        self.name = name
        self.rate_window = float(rate_window)
        # family name -> (kind, {label: instrument})
        self._families: Dict[str, Tuple[str, Dict[Hashable, Instrument]]] = {}
        self._flow_cache: Dict[Hashable, _FlowHandles] = {}
        self._link_throughput = self.rate_meter("link_throughput")
        self._queue_depth = self.gauge("queue_depth")
        self._backlog_bits = self.gauge("backlog_bits")

    # ------------------------------------------------------------------
    # Generic instrument accessors (create-on-first-use)
    # ------------------------------------------------------------------
    def _family(self, family: str, kind: str) -> Dict[Hashable, Instrument]:
        entry = self._families.get(family)
        if entry is None:
            by_label: Dict[Hashable, Instrument] = {}
            self._families[family] = (kind, by_label)
            return by_label
        if entry[0] != kind:
            raise ValueError(
                f"instrument family {family!r} already registered as "
                f"{entry[0]}, cannot reuse as {kind}"
            )
        return entry[1]

    def counter(self, family: str, label: Hashable = None) -> Counter:
        """The counter ``family{label}``, created on first use."""
        by_label = self._family(family, "counter")
        inst = by_label.get(label)
        if inst is None:
            inst = Counter()
            by_label[label] = inst
        assert isinstance(inst, Counter)
        return inst

    def gauge(self, family: str, label: Hashable = None) -> Gauge:
        """The gauge ``family{label}``, created on first use."""
        by_label = self._family(family, "gauge")
        inst = by_label.get(label)
        if inst is None:
            inst = Gauge()
            by_label[label] = inst
        assert isinstance(inst, Gauge)
        return inst

    def histogram(
        self,
        family: str,
        label: Hashable = None,
        *,
        lo: float,
        hi: float,
        bins: int,
    ) -> Histogram:
        """The histogram ``family{label}``; layout params apply only on
        first creation (all members of a family share one layout so
        shard merges stay bucket-compatible)."""
        by_label = self._family(family, "histogram")
        inst = by_label.get(label)
        if inst is None:
            inst = Histogram(lo, hi, bins)
            by_label[label] = inst
        assert isinstance(inst, Histogram)
        return inst

    def rate_meter(
        self,
        family: str,
        label: Hashable = None,
        *,
        window: Optional[float] = None,
    ) -> RateMeter:
        """The rate meter ``family{label}``; the window defaults to the
        hub's ``rate_window`` and applies only on first creation."""
        by_label = self._family(family, "ratemeter")
        inst = by_label.get(label)
        if inst is None:
            inst = RateMeter(self.rate_window if window is None else window)
            by_label[label] = inst
        assert isinstance(inst, RateMeter)
        return inst

    # ------------------------------------------------------------------
    # Hot-path update methods (call sites guard with `if metrics.enabled`)
    # ------------------------------------------------------------------
    def _flow(self, flow: Hashable) -> _FlowHandles:
        handles = self._flow_cache.get(flow)
        if handles is None:
            handles = _FlowHandles(self, flow)
            self._flow_cache[flow] = handles
        return handles

    def on_arrival(self, flow: Hashable, length: float, now: float) -> None:
        """An arrival was accepted into the queue."""
        handles = self._flow(flow)
        handles.packets_arrived.add(1)
        handles.bits_arrived.add(length)
        handles.packet_length.observe(length)

    def on_served(
        self, flow: Hashable, length: float, delay: float, now: float
    ) -> None:
        """A packet finished transmission ``delay`` seconds after arrival."""
        handles = self._flow(flow)
        handles.packets_served.add(1)
        handles.bits_served.add(length)
        handles.delay.observe(delay)
        handles.throughput.add(now, length)
        self._link_throughput.add(now, length)

    def on_dropped(self, flow: Hashable, length: float, now: float) -> None:
        """A packet was lost (buffer reject, eviction, or outage)."""
        handles = self._flow(flow)
        handles.packets_dropped.add(1)
        handles.bits_dropped.add(length)

    def on_queue_sample(self, packets: int, bits: float) -> None:
        """Record the scheduler backlog after a queue-changing event."""
        self._queue_depth.set(packets)
        self._backlog_bits.set(bits)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def families(self) -> List[str]:
        """Registered family names, sorted."""
        return sorted(self._families)

    def labels(self, family: str) -> List[Hashable]:
        """Labels registered under ``family``, deterministically sorted."""
        entry = self._families.get(family)
        if entry is None:
            return []
        return sorted(entry[1], key=_label_sort_key)

    def get(self, family: str, label: Hashable = None) -> Optional[Instrument]:
        """The instrument ``family{label}`` if it exists (no creation)."""
        entry = self._families.get(family)
        if entry is None:
            return None
        return entry[1].get(label)

    def to_payload(self) -> Dict[str, Any]:
        """Lossless JSON-compatible state, deterministically ordered."""
        instruments = []
        for family in sorted(self._families):
            kind, by_label = self._families[family]
            for label in sorted(by_label, key=_label_sort_key):
                instruments.append(
                    {
                        "family": family,
                        "kind": kind,
                        "label": encode_label(label),
                        "state": by_label[label].to_payload(),
                    }
                )
        return {
            "schema": SCHEMA,
            "name": self.name,
            "rate_window": self.rate_window,
            "instruments": instruments,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "MetricsHub":
        """Rebuild a hub from :meth:`to_payload` output (lossless)."""
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported metrics-hub schema {payload.get('schema')!r}"
            )
        hub = cls(payload["name"], payload["rate_window"])
        for item in payload["instruments"]:
            kind = item["kind"]
            instrument_cls = _KINDS.get(kind)
            if instrument_cls is None:
                raise ValueError(f"unknown instrument kind {kind!r}")
            by_label = hub._family(item["family"], kind)
            by_label[decode_label(item["label"])] = instrument_cls.from_payload(
                item["state"]
            )
        # Re-bind the unlabeled convenience handles to the restored
        # instruments (the constructor created fresh empty ones).
        hub._link_throughput = hub.rate_meter("link_throughput")
        hub._queue_depth = hub.gauge("queue_depth")
        hub._backlog_bits = hub.gauge("backlog_bits")
        return hub

    def merge(self, other: "MetricsHub") -> None:
        """Accumulate another hub (a campaign shard) into this one.

        Shared instruments merge kind-wise (counters sum, gauges max,
        histograms bucket-wise, rate meters window-wise); instruments
        only the other hub has are deep-copied in via their payloads.
        """
        for family, (kind, by_label) in other._families.items():
            mine = self._family(family, kind)
            for label, instrument in by_label.items():
                existing = mine.get(label)
                if existing is None:
                    mine[label] = type(instrument).from_payload(
                        instrument.to_payload()
                    )
                else:
                    # Kinds match within a family, so these are same-type.
                    existing.merge(instrument)  # type: ignore[arg-type]
        # Merged-in instruments invalidate cached handles.
        self._flow_cache.clear()
        self._link_throughput = self.rate_meter("link_throughput")
        self._queue_depth = self.gauge("queue_depth")
        self._backlog_bits = self.gauge("backlog_bits")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = sum(len(by_label) for _, by_label in self._families.values())
        return f"MetricsHub({self.name!r}, {n} instruments)"


class NullMetricsHub(MetricsHub):
    """The do-nothing hub wired into servers by default.

    ``enabled`` is False at class level, so a hot-path guard
    (``if metrics.enabled:``) costs one attribute read and skips every
    update — the exact discipline ``NullTracer`` established. The full
    accessor surface still works (it is a real, empty hub) so
    non-hot-path code never needs to special-case it; anything written
    to it unguarded is simply never exported.
    """

    __slots__ = ()

    enabled = False

    def __init__(self) -> None:
        super().__init__("null")


#: Shared do-nothing hub (never exported; see :class:`NullMetricsHub`).
NULL_METRICS = NullMetricsHub()
