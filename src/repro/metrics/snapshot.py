"""Snapshot: schema-versioned export of a metrics session.

A snapshot is the collection of every server hub's state plus caller
meta (experiment name, seed, parameters — never wall-clock time, which
would break run-to-run determinism and the campaign cache). Like
``ExperimentResult`` it round-trips losslessly through JSON
(:meth:`to_json` / :meth:`from_json`), and additionally merges
shard-wise (:meth:`merge`) so campaign workers can each snapshot their
own shard and the aggregator can sum them into one campaign-wide view.

:meth:`write` produces the two artifacts under ``results/metrics/``:
``<basename>.json`` (lossless, schema ``metrics-snapshot/1``) and
``<basename>.csv`` (flat summary rows for spreadsheet consumption).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.metrics.hub import MetricsHub
from repro.metrics.instruments import Counter, Gauge, Histogram, RateMeter

__all__ = ["Snapshot", "SCHEMA"]

#: Snapshot schema identifier (bump on incompatible layout changes).
SCHEMA = "metrics-snapshot/1"


def _fmt_label(label: Hashable) -> str:
    """Human-readable label cell for CSV/summary output."""
    if label is None:
        return ""
    if isinstance(label, tuple):
        return "/".join(str(part) for part in label)
    return str(label)


class Snapshot:
    """All hubs of one run (or one merged campaign), plus meta."""

    def __init__(
        self,
        meta: Optional[Dict[str, Any]] = None,
        hubs: Optional[Dict[str, MetricsHub]] = None,
    ) -> None:
        self.meta: Dict[str, Any] = dict(meta or {})
        #: server name -> hub (insertion order = registration order)
        self.hubs: Dict[str, MetricsHub] = dict(hubs or {})

    # ------------------------------------------------------------------
    # Lossless round-trip
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible state, deterministically ordered."""
        return {
            "schema": SCHEMA,
            "meta": self.meta,
            "hubs": [self.hubs[name].to_payload() for name in sorted(self.hubs)],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Snapshot":
        """Rebuild from :meth:`to_payload` output (lossless)."""
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported metrics-snapshot schema {payload.get('schema')!r}"
            )
        hubs: Dict[str, MetricsHub] = {}
        for hub_payload in payload["hubs"]:
            hub = MetricsHub.from_payload(hub_payload)
            hubs[hub.name] = hub
        return cls(meta=dict(payload.get("meta", {})), hubs=hubs)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialized payload (sorted keys: byte-stable for diffing)."""
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        """Inverse of :meth:`to_json`."""
        return cls.from_payload(json.loads(text))

    # ------------------------------------------------------------------
    # Shard aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "Snapshot") -> None:
        """Accumulate another snapshot (a campaign shard) in place.

        Hubs merge by server name; servers only the other snapshot has
        are copied in. Meta keys merge last-writer-wins except values
        that differ, which collapse into a sorted list of the variants
        (so a merged snapshot shows e.g. every seed that contributed).
        """
        for name, hub in other.hubs.items():
            mine = self.hubs.get(name)
            if mine is None:
                self.hubs[name] = MetricsHub.from_payload(hub.to_payload())
            else:
                mine.merge(hub)
        for key, value in other.meta.items():
            if key not in self.meta:
                self.meta[key] = value
                continue
            existing = self.meta[key]
            variants = existing if isinstance(existing, list) else [existing]
            if value not in variants:
                variants.append(value)
                try:
                    variants.sort()
                except TypeError:
                    variants.sort(key=repr)
            self.meta[key] = variants if len(variants) > 1 else variants[0]

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    def write(self, directory: Path, basename: str) -> Tuple[Path, Path]:
        """Write ``<basename>.json`` + ``<basename>.csv`` under
        ``directory`` (created if missing); returns both paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        json_path = directory / f"{basename}.json"
        csv_path = directory / f"{basename}.csv"
        json_path.write_text(self.to_json() + "\n")
        with csv_path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["server", "family", "label", "field", "value"])
            for row in self._csv_rows():
                writer.writerow(row)
        return json_path, csv_path

    def _csv_rows(self) -> List[Tuple[str, str, str, str, Any]]:
        rows: List[Tuple[str, str, str, str, Any]] = []
        for name in sorted(self.hubs):
            hub = self.hubs[name]
            for family in hub.families():
                for label in hub.labels(family):
                    inst = hub.get(family, label)
                    cell = _fmt_label(label)
                    if isinstance(inst, Counter):
                        rows.append((name, family, cell, "value", inst.value))
                    elif isinstance(inst, Gauge):
                        rows.append((name, family, cell, "value", inst.value))
                        rows.append((name, family, cell, "high", inst.high))
                    elif isinstance(inst, Histogram):
                        rows.append((name, family, cell, "count", inst.count))
                        rows.append((name, family, cell, "mean", inst.mean))
                        rows.append((name, family, cell, "min", inst.vmin))
                        rows.append((name, family, cell, "max", inst.vmax))
                        rows.append((name, family, cell, "p50", inst.quantile(0.5)))
                        rows.append((name, family, cell, "p99", inst.quantile(0.99)))
                    elif isinstance(inst, RateMeter):
                        rows.append((name, family, cell, "total", inst.total))
                        rows.append(
                            (name, family, cell, "windows", len(inst.buckets))
                        )
        return rows

    # ------------------------------------------------------------------
    # Summaries (CLI + tests)
    # ------------------------------------------------------------------
    def flow_summary(self, server: Optional[str] = None) -> Dict[Hashable, Dict[str, float]]:
        """Per-flow headline numbers for one server (or the union).

        Returns ``{flow: {packets_served, bits_served, packets_dropped,
        mean_delay, p99_delay, throughput}}`` where throughput is the
        flow's served bits divided by the span of the link's observed
        activity (0.0 when the span is empty).
        """
        names = [server] if server is not None else sorted(self.hubs)
        summary: Dict[Hashable, Dict[str, float]] = {}
        for name in names:
            hub = self.hubs.get(name)
            if hub is None:
                continue
            span = self._activity_span(hub)
            for flow in hub.labels("packets_served"):
                entry = summary.setdefault(
                    flow,
                    {
                        "packets_served": 0.0,
                        "bits_served": 0.0,
                        "packets_dropped": 0.0,
                        "mean_delay": 0.0,
                        "p99_delay": 0.0,
                        "throughput": 0.0,
                    },
                )
                served = hub.get("packets_served", flow)
                bits = hub.get("bits_served", flow)
                dropped = hub.get("packets_dropped", flow)
                delay = hub.get("delay", flow)
                if isinstance(served, Counter):
                    entry["packets_served"] += served.value
                if isinstance(bits, Counter):
                    entry["bits_served"] += bits.value
                    if span > 0:
                        entry["throughput"] += bits.value / span
                if isinstance(dropped, Counter):
                    entry["packets_dropped"] += dropped.value
                if isinstance(delay, Histogram) and delay.count:
                    entry["mean_delay"] = delay.mean
                    entry["p99_delay"] = delay.quantile(0.99)
        return summary

    @staticmethod
    def _activity_span(hub: MetricsHub) -> float:
        """Seconds from t=0 to the last observed departure on ``hub``."""
        meter = hub.get("link_throughput")
        if isinstance(meter, RateMeter) and meter.buckets:
            return meter.last_time
        return 0.0

    def summary_lines(self) -> List[str]:
        """Human-readable report for the CLI."""
        lines: List[str] = []
        if self.meta:
            pairs = ", ".join(f"{k}={self.meta[k]}" for k in sorted(self.meta))
            lines.append(f"meta: {pairs}")
        for name in sorted(self.hubs):
            hub = self.hubs[name]
            lines.append(f"server {name}:")
            span = self._activity_span(hub)
            meter = hub.get("link_throughput")
            if isinstance(meter, RateMeter) and span > 0:
                lines.append(
                    f"  link throughput: {meter.total / span:.0f} bits/s "
                    f"over {span:.3f}s"
                )
            depth = hub.get("queue_depth")
            if isinstance(depth, Gauge) and depth.high:
                lines.append(f"  peak queue depth: {depth.high:.0f} packets")
            flows = hub.labels("packets_served")
            if flows:
                lines.append(
                    "  flow                 served      bits  dropped "
                    "mean_delay   p99_delay"
                )
            for flow in flows:
                served = hub.get("packets_served", flow)
                bits = hub.get("bits_served", flow)
                dropped = hub.get("packets_dropped", flow)
                delay = hub.get("delay", flow)
                served_v = served.value if isinstance(served, Counter) else 0
                bits_v = bits.value if isinstance(bits, Counter) else 0
                dropped_v = dropped.value if isinstance(dropped, Counter) else 0
                mean_d = delay.mean if isinstance(delay, Histogram) else 0.0
                p99_d = (
                    delay.quantile(0.99) if isinstance(delay, Histogram) else 0.0
                )
                lines.append(
                    f"  {_fmt_label(flow):<18} {served_v:>8.0f} {bits_v:>9.0f} "
                    f"{dropped_v:>8.0f} {mean_d:>10.6f} {p99_d:>11.6f}"
                )
            violations = hub.labels("invariant_violations")
            for monitor in violations:
                counter = hub.get("invariant_violations", monitor)
                if isinstance(counter, Counter) and counter.value:
                    lines.append(
                        f"  invariant violations [{_fmt_label(monitor)}]: "
                        f"{counter.value:.0f}"
                    )
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot({len(self.hubs)} hubs, meta={sorted(self.meta)})"
