"""Streaming instruments: Counter, Gauge, Histogram, RateMeter.

Each instrument is a constant-memory online accumulator designed for
the per-packet hot path: updates are a handful of arithmetic operations
and dict/list accesses, never an allocation proportional to the number
of observations. All state is a pure function of the observation
sequence (values and simulation timestamps), so two runs that process
the same packets produce bit-identical instruments — the same property
the campaign cache and the trace-equivalence suite rely on elsewhere.

Every instrument supports a lossless payload round-trip
(:meth:`to_payload` / ``from_payload``) and an in-place :meth:`merge`
with a compatible instrument, which is how campaign shard snapshots
aggregate (see :mod:`repro.metrics.snapshot`).

Instrument *labels* (the per-flow dimension) are encoded with
:func:`encode_label` / :func:`decode_label`: scalars pass through and
tuple flow ids round-trip via a tagged list, mirroring (but not
depending on) the ``ExperimentResult`` codec.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Hashable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "RateMeter",
    "encode_label",
    "decode_label",
]

#: Tag key for tuple-valued labels in JSON payloads.
_TUPLE_TAG = "t"


def encode_label(label: Hashable) -> Any:
    """Encode an instrument label (flow id) as JSON-compatible data.

    Scalars (``str``/``int``/``float``/``bool``/``None``) pass through;
    tuples become ``{"t": [...]}`` recursively. Anything else raises
    ``TypeError`` so an unserializable flow id fails loudly at snapshot
    time rather than corrupting the export.
    """
    if label is None or isinstance(label, (bool, str, int, float)):
        return label
    if isinstance(label, tuple):
        return {_TUPLE_TAG: [encode_label(item) for item in label]}
    raise TypeError(f"cannot encode instrument label {label!r}")


def decode_label(data: Any) -> Hashable:
    """Inverse of :func:`encode_label`."""
    if isinstance(data, dict):
        return tuple(decode_label(item) for item in data[_TUPLE_TAG])
    if isinstance(data, list):  # defensive: JSON has no tuples
        return tuple(decode_label(item) for item in data)
    return data  # type: ignore[no-any-return]


class Counter:
    """A monotonically accumulating sum (packets served, bytes dropped).

    ``value`` stays an ``int`` as long as only integers are added, so
    counter exports are exact (no float rounding on packet counts).
    """

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value: float = value

    def add(self, amount: float = 1) -> None:
        """Accumulate ``amount`` (typically 1 or a packet length)."""
        self.value += amount

    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible state."""
        return {"value": self.value}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Counter":
        """Rebuild from :meth:`to_payload` output."""
        return cls(payload["value"])

    def merge(self, other: "Counter") -> None:
        """Accumulate another shard's counter (sum)."""
        self.value += other.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value!r})"


class Gauge:
    """A last-value instrument with a high-water mark (queue depth).

    :attr:`value` is the most recently set level; :attr:`high` the
    maximum ever set. Merging keeps the maximum of both fields — the
    peak across shards is the meaningful aggregate for a level signal
    (the "final" value of a merged run is not well defined).
    """

    __slots__ = ("value", "high")

    def __init__(self, value: float = 0, high: float = 0) -> None:
        self.value: float = value
        self.high: float = high

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value
        if value > self.high:
            self.high = value

    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible state."""
        return {"value": self.value, "high": self.high}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Gauge":
        """Rebuild from :meth:`to_payload` output."""
        return cls(payload["value"], payload["high"])

    def merge(self, other: "Gauge") -> None:
        """Combine with another shard's gauge (max of value and high)."""
        if other.value > self.value:
            self.value = other.value
        if other.high > self.high:
            self.high = other.high

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge(value={self.value!r}, high={self.high!r})"


class Histogram:
    """Fixed-bucket log-scale histogram (per-flow delay, packet length).

    The bucket layout is fully determined by ``(lo, hi, bins)``:
    ``bins`` buckets whose boundaries are geometrically spaced from
    ``lo`` to ``hi``, plus an underflow bucket (values below ``lo``,
    including zero and negatives) and an overflow bucket (values at or
    above ``hi``). ``counts`` therefore has ``bins + 2`` entries. The
    layout never adapts to the data — deterministic bucketing is what
    makes shard histograms mergeable bucket-by-bucket.

    Alongside the buckets the exact ``count``/``total``/``vmin``/``vmax``
    are tracked, so means are not quantized by the bucket width.
    """

    __slots__ = ("lo", "hi", "bins", "counts", "count", "total", "vmin", "vmax", "_edges")

    def __init__(self, lo: float, hi: float, bins: int) -> None:
        if not (0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
        if bins < 1:
            raise ValueError(f"need bins >= 1, got {bins!r}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        ratio = (self.hi / self.lo) ** (1.0 / self.bins)
        #: bucket boundaries, lo..hi inclusive (bins + 1 edges)
        self._edges: List[float] = [self.lo * ratio**i for i in range(self.bins + 1)]
        self.counts: List[int] = [0] * (self.bins + 2)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_right(self._edges, value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """``(low, high)`` bounds of bucket ``index`` (0 = underflow,
        ``bins + 1`` = overflow; infinite outer bounds)."""
        if index == 0:
            return (float("-inf"), self.lo)
        if index == self.bins + 1:
            return (self.hi, float("inf"))
        return (self._edges[index - 1], self._edges[index])

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the bucket layout.

        Returns the upper bound of the bucket containing the quantile
        (``vmax``/``vmin`` for the outer buckets), which bounds the true
        quantile within one geometric bucket width. 0.0 when empty.
        """
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for index, n in enumerate(self.counts):
            seen += n
            if seen >= target and n:
                if index == 0:
                    return self.lo if self.vmin is None else min(self.lo, self.vmin)
                if index == self.bins + 1:
                    return self.hi if self.vmax is None else self.vmax
                return self._edges[index]
        return self.hi if self.vmax is None else self.vmax

    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible state (layout config + buckets + exact stats)."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins": self.bins,
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Histogram":
        """Rebuild from :meth:`to_payload` output."""
        hist = cls(payload["lo"], payload["hi"], payload["bins"])
        hist.counts = [int(c) for c in payload["counts"]]
        hist.count = int(payload["count"])
        hist.total = float(payload["total"])
        hist.vmin = payload["min"]
        hist.vmax = payload["max"]
        return hist

    def merge(self, other: "Histogram") -> None:
        """Bucket-wise merge; layouts must match exactly."""
        if (self.lo, self.hi, self.bins) != (other.lo, other.hi, other.bins):
            raise ValueError(
                f"cannot merge histograms with layouts "
                f"({self.lo}, {self.hi}, {self.bins}) and "
                f"({other.lo}, {other.hi}, {other.bins})"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        if other.vmin is not None and (self.vmin is None or other.vmin < self.vmin):
            self.vmin = other.vmin
        if other.vmax is not None and (self.vmax is None or other.vmax > self.vmax):
            self.vmax = other.vmax

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(lo={self.lo:g}, hi={self.hi:g}, bins={self.bins}, "
            f"count={self.count})"
        )


class RateMeter:
    """Windowed accumulator producing a (time, rate) series.

    Simulation time is divided into fixed windows of ``window`` seconds;
    :meth:`add` accumulates ``amount`` into the window containing
    ``now``. Only non-empty windows are stored (sparse), so a mostly
    idle link costs nothing. :meth:`series` converts to
    ``(window_start, amount / window)`` pairs — e.g. bits accumulated
    per window become a bits-per-second throughput curve, the live
    analogue of Figure 2's time series.
    """

    __slots__ = ("window", "buckets", "last_time")

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        self.window = float(window)
        #: window index -> accumulated amount (sparse)
        self.buckets: Dict[int, float] = {}
        #: largest timestamp observed (-inf before the first sample)
        self.last_time = float("-inf")

    def add(self, now: float, amount: float) -> None:
        """Accumulate ``amount`` into the window containing ``now``."""
        index = int(now / self.window)
        bucket = self.buckets.get(index)
        self.buckets[index] = amount if bucket is None else bucket + amount
        if now > self.last_time:
            self.last_time = now

    @property
    def total(self) -> float:
        """Sum of all accumulated amounts."""
        return sum(self.buckets.values())

    def series(self) -> List[Tuple[float, float]]:
        """``(window_start_time, rate)`` pairs in time order.

        The rate is ``amount / window``; windows with no samples are
        omitted (a reader should treat gaps as zero).
        """
        return [
            (index * self.window, amount / self.window)
            for index, amount in sorted(self.buckets.items())
        ]

    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible state (sparse window sums, not rates)."""
        return {
            "window": self.window,
            "buckets": [[index, amount] for index, amount in sorted(self.buckets.items())],
            "last_time": self.last_time if self.buckets else None,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RateMeter":
        """Rebuild from :meth:`to_payload` output."""
        meter = cls(payload["window"])
        meter.buckets = {int(index): amount for index, amount in payload["buckets"]}
        last = payload.get("last_time")
        meter.last_time = float("-inf") if last is None else float(last)
        return meter

    def merge(self, other: "RateMeter") -> None:
        """Window-wise sum; window widths must match exactly."""
        if self.window != other.window:
            raise ValueError(
                f"cannot merge rate meters with windows "
                f"{self.window} and {other.window}"
            )
        for index, amount in other.buckets.items():
            bucket = self.buckets.get(index)
            self.buckets[index] = amount if bucket is None else bucket + amount
        if other.last_time > self.last_time:
            self.last_time = other.last_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RateMeter(window={self.window:g}, windows={len(self.buckets)})"
