"""Server models: capacity processes and the Link service loop.

Constant-rate, Fluctuation Constrained (paper Definition 1),
Exponentially Bounded Fluctuation (Definition 2) and residual-capacity
processes, plus :class:`repro.servers.link.Link` which drives any
:class:`repro.core.base.Scheduler` against any capacity process on a
:class:`repro.simulation.engine.Simulator`.
"""

from repro.servers.base import (
    CapacityError,
    CapacityProcess,
    ConstantCapacity,
    PiecewiseCapacity,
)
from repro.servers.ebf import (
    BernoulliCapacity,
    UniformSlotCapacity,
    ebf_envelope_from_trace,
)
from repro.servers.fluctuation import (
    FluctuationConstrainedCapacity,
    PeriodicStall,
    TwoRateSquareWave,
    make_fc,
)
from repro.servers.link import Link
from repro.servers.markov import GilbertElliottCapacity
from repro.servers.residual import residual_from_demand

__all__ = [
    "CapacityError",
    "CapacityProcess",
    "ConstantCapacity",
    "PiecewiseCapacity",
    "TwoRateSquareWave",
    "PeriodicStall",
    "FluctuationConstrainedCapacity",
    "make_fc",
    "BernoulliCapacity",
    "UniformSlotCapacity",
    "GilbertElliottCapacity",
    "ebf_envelope_from_trace",
    "residual_from_demand",
    "Link",
]
