"""Markov-modulated (Gilbert–Elliott) capacity process.

A two-state continuous-slot Markov chain: each slot the server is in
the GOOD state (rate ``good_rate``) or the BAD state (``bad_rate``);
transitions happen per slot with probabilities ``p_gb`` / ``p_bg``.
Models wireless/broadcast links with bursty outages — the motivating
variable-rate servers of the paper's Section 2. With geometrically
bounded sojourn times, the work-deficit tail decays exponentially, so a
Gilbert–Elliott server is EBF (Definition 2); the experiment suite fits
its (B, α) empirically like any other EBF process.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Tuple

from repro.servers.base import CapacityError, PiecewiseCapacity


class GilbertElliottCapacity(PiecewiseCapacity):
    """Two-state Markov-modulated link rate."""

    def __init__(
        self,
        good_rate: float,
        bad_rate: float,
        p_gb: float,
        p_bg: float,
        slot: float,
        rng: Optional[random.Random] = None,
        start_good: bool = True,
    ) -> None:
        if good_rate <= 0 or bad_rate < 0 or good_rate <= bad_rate:
            raise CapacityError("need good_rate > bad_rate >= 0")
        if not (0 < p_gb <= 1 and 0 < p_bg <= 1):
            raise CapacityError("transition probabilities must be in (0, 1]")
        if slot <= 0:
            raise CapacityError("slot must be positive")
        rng = rng if rng is not None else random.Random(0)
        self.good_rate, self.bad_rate = float(good_rate), float(bad_rate)
        self.p_gb, self.p_bg = float(p_gb), float(p_bg)
        self.slot = float(slot)
        # Stationary probability of GOOD.
        pi_good = p_bg / (p_gb + p_bg)
        mean = pi_good * good_rate + (1 - pi_good) * bad_rate
        self.stationary_good = pi_good

        def segments() -> Iterator[Tuple[float, float]]:
            t = 0.0
            good = start_good
            while True:
                yield (t, good_rate if good else bad_rate)
                if good:
                    if rng.random() < p_gb:
                        good = False
                else:
                    if rng.random() < p_bg:
                        good = True
                t += slot

        super().__init__(segments(), mean, name="gilbert-elliott")

    @property
    def mean_good_sojourn(self) -> float:
        """Mean time spent in GOOD per visit (seconds)."""
        return self.slot / self.p_gb

    @property
    def mean_bad_sojourn(self) -> float:
        return self.slot / self.p_bg
