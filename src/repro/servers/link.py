"""The Link: a scheduler driven by a capacity process on a simulator.

``Link`` is the single place where scheduling policy meets transmission
capacity. It owns the non-preemptive service loop:

* ``send(packet)`` — packet arrives; optionally drop-tail against a
  buffer limit; otherwise enqueue and, if idle, start service;
* service of one packet occupies the transmitter for
  ``capacity.finish_time(now, length) - now`` seconds;
* on completion the scheduler is notified (virtual-time bookkeeping),
  departure hooks fire (multi-hop forwarding, sinks), and the next
  packet is fetched.

Every packet's (arrival, start-of-service, departure) is recorded in a
:class:`repro.simulation.tracing.Tracer` for the fairness/delay
analysis — unless the tracer's ``enabled`` flag is False (pass a
:class:`repro.simulation.tracing.NullTracer` to turn the per-packet
tracing cost into a single attribute test). Busy periods are logged
because the FC/EBF definitions constrain work only *within* busy
periods.

Outages
-------
:meth:`Link.pause` / :meth:`Link.resume` model link failure and
recovery (capacity going to zero and back) without deadlocking the
service loop: while paused the link accepts and queues arrivals but
starts no transmission, and the packet that was on the wire when the
outage hit is either retransmitted from scratch (``recovery="replay"``)
or dropped and counted (``recovery="drop"``) at recovery time. The
:class:`repro.faults.LinkOutage` injector drives these hooks on a
deterministic or seeded schedule.

Pause/resume is *counted*, not boolean: each :meth:`pause` increments a
hold depth and each :meth:`resume` releases one hold, with service
restarting (and the recovery policy applying) only when the depth
returns to zero. This is what lets several composed injectors — two
overlapping :class:`~repro.faults.LinkOutage`\\ s, or an outage plus a
:class:`~repro.faults.ServerStall` — each take the link down over
overlapping windows without double-pausing, resuming underneath each
other, or destroying the in-flight packet that the outer hold still
owns. A :meth:`resume` with no hold outstanding stays a no-op.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.base import Scheduler
from repro.core.packet import Packet
from repro.metrics.hub import MetricsHub
from repro.metrics.session import hub_for
from repro.servers.base import CapacityProcess
from repro.simulation.engine import Simulator
from repro.simulation.tracing import Tracer

DepartureHook = Callable[[Packet, float], None]
DropHook = Callable[[Packet, float], None]
ArrivalHook = Callable[[Packet, float], None]


class Link:
    """A transmission link: scheduler + capacity process + event loop."""

    __slots__ = (
        "sim",
        "scheduler",
        "capacity",
        "name",
        "buffer_packets",
        "buffer_bits",
        "per_flow_buffer_packets",
        "drop_policy",
        "tracer",
        "metrics",
        "departure_hooks",
        "drop_hooks",
        "arrival_hooks",
        "_busy",
        "_pause_depth",
        "_in_flight",
        "_completion",
        "_wakeup",
        "_records",
        "bits_transmitted",
        "packets_transmitted",
        "packets_dropped",
        "busy_periods",
        "_busy_since",
    )

    def __init__(
        self,
        sim: Simulator,
        scheduler: Scheduler,
        capacity: CapacityProcess,
        name: str = "link",
        buffer_packets: Optional[int] = None,
        buffer_bits: Optional[int] = None,
        per_flow_buffer_packets: Optional[Dict] = None,
        drop_policy: str = "drop_tail",
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsHub] = None,
    ) -> None:
        if drop_policy not in ("drop_tail", "longest_queue"):
            raise ValueError(
                f"drop_policy must be 'drop_tail' or 'longest_queue', "
                f"got {drop_policy!r}"
            )
        self.sim = sim
        self.scheduler = scheduler
        self.capacity = capacity
        self.name = name
        self.buffer_packets = buffer_packets
        self.buffer_bits = buffer_bits
        # flow id -> max queued packets for that flow (drop-tail per flow)
        self.per_flow_buffer_packets = per_flow_buffer_packets or {}
        #: "drop_tail" drops the arriving packet; "longest_queue" drops
        #: from the tail of the longest queue instead (Demers et al.
        #: 1989), protecting light flows from heavy ones at the buffer.
        self.drop_policy = drop_policy
        self.tracer = tracer if tracer is not None else Tracer(name)
        #: Online instruments; defaults to the ambient hub for this
        #: server name — the shared null hub (enabled=False) unless a
        #: MetricsSession is active, in which case every guarded update
        #: below goes live. Same discipline as the tracer.
        self.metrics = metrics if metrics is not None else hub_for(name)
        self.departure_hooks: List[DepartureHook] = []
        self.drop_hooks: List[DropHook] = []
        #: Fired for every *accepted* arrival, after the scheduler has
        #: enqueued it (runtime invariant monitors hang off these).
        self.arrival_hooks: List[ArrivalHook] = []
        self._busy = False
        # Outage hold depth: >0 means the link is down. Counted (not
        # boolean) so composed injectors can pause/resume independently.
        self._pause_depth = 0
        self._in_flight: Optional[Packet] = None
        self._completion = None  # pending transmission-complete event
        self._wakeup = None  # pending eligibility wake-up event
        # packet uid -> tracer handle (only populated while tracing).
        self._records: Dict[int, object] = {}
        self.bits_transmitted = 0
        self.packets_transmitted = 0
        self.packets_dropped = 0
        self.busy_periods: List[Tuple[float, float]] = []
        self._busy_since: Optional[float] = None

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link at the current simulation time.

        Returns False (and fires drop hooks) when the buffer is full.
        """
        now = self.sim.now
        tracer = self.tracer
        if tracer.enabled:
            handle = tracer.on_arrival(packet.flow, packet.seqno, packet.length, now)
        else:
            handle = None
        # Longest-queue-drop may need several evictions to make room for
        # a large arrival under a bits-denominated buffer. An unlimited
        # buffer (the common case) skips the admission check entirely.
        if (
            self.buffer_packets is not None
            or self.buffer_bits is not None
            or self.per_flow_buffer_packets
        ):
            while self._buffer_full(packet):
                victim = None
                if self.drop_policy == "longest_queue" and not self._per_flow_limited(packet):
                    victim = self._drop_from_longest_queue(now)
                if victim is None:
                    if handle is not None:
                        tracer.mark_dropped(handle)
                    self.packets_dropped += 1
                    if self.metrics.enabled:
                        self.metrics.on_dropped(packet.flow, packet.length, now)
                    if self.drop_hooks:
                        for hook in self.drop_hooks:
                            hook(packet, now)
                    return False
        if handle is not None:
            self._records[packet.uid] = handle
        scheduler = self.scheduler
        scheduler.enqueue(packet, now)
        metrics = self.metrics
        if metrics.enabled:
            metrics.on_arrival(packet.flow, packet.length, now)
            metrics.on_queue_sample(
                scheduler.backlog_packets, scheduler.backlog_bits
            )
        if self.arrival_hooks:
            for hook in self.arrival_hooks:
                hook(packet, now)
        if not self._busy:
            self._start_service()
        return True

    def _per_flow_limited(self, packet: Packet) -> bool:
        """True when this arrival violates its own flow's buffer cap
        (longest-queue-drop must not steal room for a capped flow)."""
        limit = self.per_flow_buffer_packets.get(packet.flow)
        return (
            limit is not None
            and self.scheduler.flow_backlog(packet.flow) + 1 > limit
        )

    def _drop_from_longest_queue(self, now: float) -> Optional[Packet]:
        """Evict the youngest packet of the most backlogged flow."""
        longest = None
        longest_backlog = 0
        for flow_id in self.scheduler.backlogged_flows():
            backlog = self.scheduler.flow_backlog(flow_id)
            if backlog > longest_backlog:
                longest, longest_backlog = flow_id, backlog
        if longest is None:
            return None
        victim = self.scheduler.discard_tail(longest)
        if victim is None:
            return None
        victim_handle = self._records.pop(victim.uid, None)
        if victim_handle is not None:
            self.tracer.mark_dropped(victim_handle)
        self.packets_dropped += 1
        if self.metrics.enabled:
            self.metrics.on_dropped(victim.flow, victim.length, now)
        for hook in self.drop_hooks:
            hook(victim, now)
        return victim

    def _buffer_full(self, packet: Packet) -> bool:
        if not self._busy and self.scheduler.is_empty:
            # The packet goes straight to the transmitter, not the
            # waiting room; buffer limits do not apply.
            return False
        if (
            self.buffer_packets is not None
            and self.scheduler.backlog_packets + 1 > self.buffer_packets
        ):
            return True
        if (
            self.buffer_bits is not None
            and self.scheduler.backlog_bits + packet.length > self.buffer_bits
        ):
            return True
        limit = self.per_flow_buffer_packets.get(packet.flow)
        if limit is not None and self.scheduler.flow_backlog(packet.flow) + 1 > limit:
            return True
        return False

    # ------------------------------------------------------------------
    # Service loop
    # ------------------------------------------------------------------
    def _arm_next(self, now: float) -> Optional[Tuple[Packet, float]]:
        """Claim the transmitter for the next packet, if any.

        Everything :meth:`_start_service` does *except* arranging the
        completion — the caller either schedules it as a timer or (in
        the busy-period fast path of :meth:`_complete`) runs it inline.
        ``now`` is the caller's current simulation time (always
        ``sim.now``; passed in so the fast path's loop can track the
        clock without re-reading it). Returns ``(packet, finish_time)``
        once the transmitter is claimed, or ``None`` when service
        cannot start (already busy, link down, or nothing eligible to
        send).
        """
        if self._busy:
            # A departure hook already restarted service reentrantly
            # (e.g. a closed-loop source refilling inside _complete).
            return None
        if self._pause_depth:
            # Link is down: arrivals queue, the transmitter stays idle.
            return None
        packet = self.scheduler.dequeue(now)
        if packet is None:
            if self._busy_since is not None:
                self.busy_periods.append((self._busy_since, now))
                self._busy_since = None
            if self.scheduler.backlog_packets > 0:
                # Non-work-conserving discipline holding packets back:
                # wake up when the next one becomes eligible.
                wake = self.scheduler.next_eligible_time(now)
                if wake is not None and (
                    self._wakeup is None or not self._wakeup.pending
                ):
                    self._wakeup = self.sim.at(
                        max(wake, now), self._on_wakeup
                    )
            return None
        if self._busy_since is None:
            self._busy_since = now
        self._busy = True
        self._in_flight = packet
        if self._records:
            handle = self._records.get(packet.uid)
            if handle is not None:
                self.tracer.mark_start(handle, now)
        return packet, self.capacity.finish_time(now, packet.length)

    def _start_service(self) -> None:
        armed = self._arm_next(self.sim.now)
        if armed is not None:
            packet, finish = armed
            self._completion = self.sim.at(finish, self._complete, packet)

    def _complete(self, packet: Packet) -> None:  # lint: hot
        """Finish transmitting ``packet``; chain the busy period.

        While the link stays backlogged, consecutive departures are
        *chained*: if the engine can guarantee nothing else fires at or
        before the next finish time (:meth:`Simulator.reserve_inline`),
        the clock jumps there and the next completion runs in this same
        loop iteration — no completion timer, no Event allocation, no
        queue round trip. Any interleaving work (an arrival, a fault
        injector's timer, a stream batch, a pause from a departure
        hook) makes the reservation fail, and the completion falls back
        to a normal timer exactly as scheduled before this fast path
        existed. Observable behavior — departure times/order, tracer
        records, metrics, hook order, ``events_processed`` — is
        identical either way.
        """
        sim = self.sim
        # The seed engine (tests/reference) has no reserve_inline; the
        # fast path simply stays off there.
        reserve = getattr(sim, "reserve_inline", None)
        scheduler = self.scheduler
        metrics = self.metrics
        now = sim.now
        while True:
            self._busy = False
            self._in_flight = None
            self._completion = None
            if self._records:
                handle = self._records.pop(packet.uid, None)
                if handle is not None:
                    self.tracer.mark_departure(handle, now)
            self.bits_transmitted += packet.length
            self.packets_transmitted += 1
            if metrics.enabled:
                metrics.on_served(
                    packet.flow, packet.length, now - packet.arrival, now
                )
                metrics.on_queue_sample(
                    scheduler.backlog_packets, scheduler.backlog_bits
                )
            scheduler.on_service_complete(packet, now)
            if self.departure_hooks:
                for hook in self.departure_hooks:
                    hook(packet, now)
            armed = self._arm_next(now)
            if armed is None:
                return
            packet, finish = armed
            if reserve is not None and reserve(finish):
                now = finish  # reserve_inline advanced the clock here
                continue  # complete inline, no timer
            self._completion = sim.at(finish, self._complete, packet)
            return

    def _on_wakeup(self) -> None:
        self._wakeup = None
        self._start_service()

    # ------------------------------------------------------------------
    # Outage control (link down / up)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Take the link down (one hold) at the current simulation time.

        The first hold aborts the in-flight transmission (if any) — its
        completion event is cancelled and the packet is held for the
        final :meth:`resume` to replay or drop. Arrivals while paused
        are queued normally (up to the buffer limits); no service starts
        until every hold is released. Pausing an already-paused link
        stacks another hold (counted semantics) so composed injectors
        never double-abort the same transmission.
        """
        self._pause_depth += 1
        if self._pause_depth > 1:
            return
        if self._completion is not None and self._completion.pending:
            self._completion.cancel()
        self._completion = None
        if self._wakeup is not None and self._wakeup.pending:
            self._wakeup.cancel()
        self._wakeup = None

    def resume(self, recovery: str = "replay") -> None:
        """Release one hold; bring the link back up at depth zero.

        ``recovery="replay"`` retransmits the packet that was on the
        wire when the outage hit from scratch (the receiver saw only a
        truncated frame); ``recovery="drop"`` discards it, counting it
        in :attr:`packets_dropped` and firing drop hooks, which models a
        link that flushes its transmit ring on reset. Either way the
        service loop restarts, so a zero-capacity episode can never
        deadlock the link. The recovery policy is applied by the
        *final* release only — while other holds remain the link stays
        down and the in-flight packet stays parked. Resuming a link
        with no hold outstanding is a no-op.
        """
        if recovery not in ("replay", "drop"):
            raise ValueError(
                f"recovery must be 'replay' or 'drop', got {recovery!r}"
            )
        if self._pause_depth == 0:
            return
        self._pause_depth -= 1
        if self._pause_depth:
            return
        now = self.sim.now
        packet = self._in_flight
        if packet is not None:
            if recovery == "replay":
                handle = self._records.get(packet.uid)
                if handle is not None:
                    self.tracer.mark_start(handle, now)
                finish = self.capacity.finish_time(now, packet.length)
                self._completion = self.sim.at(finish, self._complete, packet)
                return
            # recovery == "drop": the interrupted packet is lost. The
            # scheduler still gets its completion notification (the
            # service slot is over, the packet just never arrived), so
            # virtual-time bookkeeping stays consistent. The packet is
            # tagged so monitors can tell allocated-then-destroyed
            # service from a queue eviction.
            self._busy = False
            self._in_flight = None
            handle = self._records.pop(packet.uid, None)
            if handle is not None:
                self.tracer.mark_dropped(handle)
            packet.meta["outage_drop"] = True
            self.packets_dropped += 1
            if self.metrics.enabled:
                self.metrics.on_dropped(packet.flow, packet.length, now)
            self.scheduler.on_service_complete(packet, now)
            for hook in self.drop_hooks:
                hook(packet, now)
        self._start_service()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def paused(self) -> bool:
        """True while the link is down (at least one hold outstanding)."""
        return self._pause_depth > 0

    @property
    def pause_depth(self) -> int:
        """Number of outstanding pause holds (0 = link up)."""
        return self._pause_depth

    @property
    def in_flight(self) -> Optional[Packet]:
        """The packet currently occupying the transmitter, if any."""
        return self._in_flight

    def utilization(self, t1: float, t2: float) -> float:
        """Fraction of nominal capacity used for traffic in [t1, t2]."""
        if t2 <= t1:
            return 0.0
        possible = self.capacity.work(t1, t2)
        if possible <= 0:
            return 0.0
        served = sum(
            r.length
            for r in self.tracer.iter_departed()
            if t1 <= r.departure <= t2
        )
        return served / possible

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name}, {self.scheduler.algorithm}, "
            f"tx={self.packets_transmitted}p, drop={self.packets_dropped}p)"
        )
