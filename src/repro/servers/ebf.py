"""Exponentially Bounded Fluctuation (EBF) servers — paper Definition 2.

An EBF server with parameters :math:`(C, B, \\alpha, \\delta(C))`
satisfies, for all intervals of a busy period,

.. math::

   P(W(t_1, t_2) < C(t_2 - t_1) - \\delta(C) - \\gamma) \\le B e^{-\\alpha\\gamma}

i.e. the work deficit beyond δ has an exponentially decaying tail. Any
slotted rate process whose per-slot work is i.i.d. (or suitably mixing)
with mean at least C and bounded support is EBF by a Chernoff bound;
this module provides two such processes plus the closed-form Chernoff
parameters used by the Theorem 3/5 experiments.

For a Bernoulli process serving ``2C`` with probability ``p >= 1/2``
(else 0) in slots of length τ, Hoeffding gives, per n-slot window,
:math:`P(\\text{deficit} > \\gamma) \\le e^{-\\gamma^2 / (2 n C^2 (2\\tau)^2)}`;
union-bounding over windows yields conservative (B, α) estimates. The
experiments instead *measure* the tail and check it against the declared
envelope, which is the operationally meaningful statement.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional, Tuple

from repro.servers.base import CapacityError, PiecewiseCapacity


class BernoulliCapacity(PiecewiseCapacity):
    """Per-slot rate ``peak`` w.p. ``p`` else 0, i.i.d. (mean ``p*peak``)."""

    def __init__(
        self,
        peak: float,
        p: float,
        slot: float,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0 < p <= 1 or peak <= 0 or slot <= 0:
            raise CapacityError("need 0 < p <= 1, peak > 0, slot > 0")
        rng = rng if rng is not None else random.Random(0)
        self.peak, self.p, self.slot = float(peak), float(p), float(slot)

        def segments() -> Iterator[Tuple[float, float]]:
            t = 0.0
            while True:
                yield (t, peak if rng.random() < p else 0.0)
                t += slot

        super().__init__(segments(), peak * p, name="ebf-bernoulli")


class UniformSlotCapacity(PiecewiseCapacity):
    """Per-slot rate uniform on ``[low, high]``, i.i.d."""

    def __init__(
        self,
        low: float,
        high: float,
        slot: float,
        rng: Optional[random.Random] = None,
    ) -> None:
        if low < 0 or high <= low or slot <= 0:
            raise CapacityError("need 0 <= low < high, slot > 0")
        rng = rng if rng is not None else random.Random(0)
        self.low, self.high, self.slot = float(low), float(high), float(slot)

        def segments() -> Iterator[Tuple[float, float]]:
            t = 0.0
            while True:
                yield (t, rng.uniform(low, high))
                t += slot

        super().__init__(segments(), (low + high) / 2, name="ebf-uniform")


def ebf_envelope_from_trace(
    deficits: List[float],
) -> Tuple[float, float]:
    """Fit ``P(deficit > γ) <= B e^{-α γ}`` to observed work deficits.

    ``deficits`` are samples of :math:`C(t_2-t_1) - W(t_1,t_2) - \\delta`
    (positive part) over many random intervals. Returns (B, α) from a
    least-squares fit of ``log P`` against γ on the empirical tail. Used
    by the Theorem 3/5 experiments to declare an honest envelope for a
    given random capacity process.
    """
    positive = sorted(d for d in deficits if d > 0)
    if not positive:
        return (1.0, float("inf"))
    n = len(deficits)
    # Empirical survival function at each positive sample.
    points = [
        (gamma, (len(positive) - i) / n) for i, gamma in enumerate(positive)
    ]
    # Least squares on log survival: log p = log B - alpha * gamma.
    xs = [g for g, _p in points]
    ys = [math.log(p) for _g, p in points]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        return (1.0, float("inf"))
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
    alpha = max(1e-12, -slope)
    log_b = mean_y + alpha * mean_x
    b = math.exp(log_b)
    return (max(b, 1.0), alpha)
