"""Fluctuation Constrained (FC) capacity processes — paper Definition 1.

An FC server with parameters :math:`(C, \\delta(C))` does, in any
interval of a busy period, at most :math:`\\delta(C)` bits less work than
a constant-rate-C server:

.. math:: W(t_1, t_2) \\ge C (t_2 - t_1) - \\delta(C)

Writing :math:`D(t) = C t - W(0, t)` for the *deficit*, the condition is
equivalent to :math:`D(t) - \\min_{s \\le t} D(s) \\le \\delta` — the
construction used by :class:`FluctuationConstrainedCapacity` to turn an
arbitrary random rate sequence into a certified FC profile: whenever a
candidate slot rate would push the deficit past δ, the rate is raised
just enough to hold the constraint.

Deterministic profiles (square wave, periodic stall) are also provided;
their exact δ(C) values have closed forms used by the bound tests.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Tuple

from repro.servers.base import CapacityError, PiecewiseCapacity


class TwoRateSquareWave(PiecewiseCapacity):
    """Alternates ``high_rate`` for ``high_time`` then ``low_rate`` for
    ``low_time``. Mean rate and exact δ have closed forms.

    The worst interval for the FC condition is a full low phase, so

    .. math:: \\delta = (C - r_{low}) \\cdot T_{low}

    where C is the time-average rate.
    """

    def __init__(
        self,
        high_rate: float,
        high_time: float,
        low_rate: float,
        low_time: float,
        start_low: bool = False,
    ) -> None:
        if high_time <= 0 or low_time <= 0:
            raise CapacityError("phase durations must be positive")
        if low_rate < 0 or high_rate <= 0 or high_rate < low_rate:
            raise CapacityError("need high_rate >= low_rate >= 0, high_rate > 0")
        period = high_time + low_time
        mean = (high_rate * high_time + low_rate * low_time) / period
        self.high_rate, self.high_time = float(high_rate), float(high_time)
        self.low_rate, self.low_time = float(low_rate), float(low_time)
        self.start_low = start_low

        def segments() -> Iterator[Tuple[float, float]]:
            t = 0.0
            low_first = start_low
            while True:
                if low_first:
                    yield (t, low_rate)
                    t += low_time
                    yield (t, high_rate)
                    t += high_time
                else:
                    yield (t, high_rate)
                    t += high_time
                    yield (t, low_rate)
                    t += low_time

        super().__init__(segments(), mean, name="square-wave")

    @property
    def delta(self) -> float:
        """Exact δ(C) with C = the time-average rate.

        The deficit grows only during low phases; starting a measurement
        interval at a low-phase start and ending at its end maximizes it.
        """
        return (self.average_rate - self.low_rate) * self.low_time


class PeriodicStall(TwoRateSquareWave):
    """Serves at ``rate`` but stalls completely for ``stall`` out of
    every ``period`` seconds — a CPU-constrained router taking routing
    updates (paper Section 2's motivation)."""

    def __init__(self, rate: float, stall: float, period: float) -> None:
        if not 0 < stall < period:
            raise CapacityError("need 0 < stall < period")
        super().__init__(
            high_rate=rate,
            high_time=period - stall,
            low_rate=0.0,
            low_time=stall,
        )
        self.name = "periodic-stall"


class FluctuationConstrainedCapacity(PiecewiseCapacity):
    """Random slotted rates, *certified* FC(guarantee_rate, delta).

    Each slot's candidate rate is drawn from ``rng.uniform(0,
    2*guarantee_rate)`` (or a custom ``draw``), then raised if necessary
    so the running deficit never exceeds ``delta``. The resulting
    profile provably satisfies Definition 1 with the declared
    parameters, which the property tests verify empirically.
    """

    def __init__(
        self,
        guarantee_rate: float,
        delta: float,
        slot: float,
        rng: Optional[random.Random] = None,
        draw=None,
    ) -> None:
        if guarantee_rate <= 0 or delta < 0 or slot <= 0:
            raise CapacityError("need guarantee_rate > 0, delta >= 0, slot > 0")
        rng = rng if rng is not None else random.Random(0)
        c = float(guarantee_rate)
        self.guarantee_rate = c
        self.delta = float(delta)
        self.slot = float(slot)

        def default_draw() -> float:
            return rng.uniform(0.0, 2.0 * c)

        draw_fn = draw if draw is not None else default_draw

        def segments() -> Iterator[Tuple[float, float]]:
            t = 0.0
            deficit = 0.0  # D(t) - min_{s<=t} D(s), directly
            while True:
                rate = max(0.0, draw_fn())
                new_deficit = deficit + (c - rate) * slot
                if new_deficit > delta:
                    # Raise the rate so the deficit lands exactly on δ.
                    rate = c + (deficit - delta) / slot
                    new_deficit = delta
                deficit = max(0.0, new_deficit)
                yield (t, rate)
                t += slot

        super().__init__(segments(), c, name="fc-random")


def make_fc(
    kind: str,
    rate: float,
    delta: float,
    rng: Optional[random.Random] = None,
    slot: Optional[float] = None,
) -> PiecewiseCapacity:
    """Factory for FC capacity processes used by the experiment sweeps.

    ``kind``: ``"square"``, ``"stall"`` or ``"random"``. For the
    deterministic kinds the phase lengths are derived from δ so that the
    constructed profile's exact δ matches the request.
    """
    if kind == "square":
        # high = 2C for T, low = 0 for T, mean C; δ = C*T => T = δ/C.
        period_half = delta / rate if delta > 0 else 1e-3
        return TwoRateSquareWave(2 * rate, period_half, 0.0, period_half)
    if kind == "stall":
        # Serve at 2C for T, stall T: mean C, δ = C*T.
        stall = delta / rate if delta > 0 else 1e-3
        return PeriodicStall(2 * rate, stall, 2 * stall)
    if kind == "random":
        slot = slot if slot is not None else max(delta / rate / 4, 1e-6)
        return FluctuationConstrainedCapacity(rate, delta, slot, rng=rng)
    raise CapacityError(f"unknown FC kind {kind!r}")
