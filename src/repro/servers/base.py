"""Capacity processes: how fast the server can transmit, over time.

The paper analyzes SFQ on servers whose service rate fluctuates —
flow-controlled links, broadcast media, CPU-constrained routers, or the
residual capacity left to low-priority traffic. A
:class:`CapacityProcess` models the instantaneous transmission rate as a
piecewise-constant function of absolute time and answers two questions:

* ``work(t1, t2)`` — bits the server could transmit in ``[t1, t2]``;
* ``finish_time(start, length)`` — when a packet of ``length`` bits
  beginning transmission at ``start`` completes.

Profiles are generated lazily (some are infinite random processes), and
queried monotonically by the :class:`repro.servers.link.Link`, so a
moving cursor keeps queries amortized O(1).
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Iterator, List, Optional, Tuple


class CapacityError(Exception):
    """Raised when a capacity process cannot answer (e.g. stalled forever)."""


class CapacityProcess(ABC):
    """Piecewise-constant instantaneous transmission rate r(t) >= 0."""

    #: Nominal average rate in bits/s; used by analytical bounds.
    average_rate: float

    @abstractmethod
    def rate_at(self, t: float) -> float:
        """Instantaneous rate at time ``t`` (bits/s)."""

    @abstractmethod
    def work(self, t1: float, t2: float) -> float:
        """Bits of work the server performs in ``[t1, t2]`` when busy."""

    @abstractmethod
    def finish_time(self, start: float, length: float) -> float:
        """Completion time of ``length`` bits starting at ``start``."""


class ConstantCapacity(CapacityProcess):
    """Constant-rate server: FC with :math:`\\delta(C) = 0`."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise CapacityError(f"rate must be positive, got {rate}")
        self.average_rate = float(rate)

    def rate_at(self, t: float) -> float:
        return self.average_rate

    def work(self, t1: float, t2: float) -> float:
        if t2 < t1:
            raise CapacityError(f"bad interval [{t1}, {t2}]")
        return self.average_rate * (t2 - t1)

    def finish_time(self, start: float, length: float) -> float:
        return start + length / self.average_rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstantCapacity({self.average_rate:.9g} b/s)"


class PiecewiseCapacity(CapacityProcess):
    """Capacity from a (possibly infinite) stream of rate breakpoints.

    Subclasses (or callers) supply an iterator of ``(time, rate)`` pairs
    with strictly increasing times, the first at ``t = 0``. The last rate
    of a *finite* stream holds forever.
    """

    # How far past the requested horizon to pre-generate, to amortize.
    _CHUNK = 64

    def __init__(
        self,
        segments: Iterator[Tuple[float, float]],
        average_rate: float,
        name: str = "piecewise",
    ) -> None:
        self._iter = iter(segments)
        self.average_rate = float(average_rate)
        self.name = name
        self._times: List[float] = []
        self._rates: List[float] = []
        self._exhausted = False
        self._pull()  # materialize the first segment
        if not self._times or self._times[0] != 0.0:
            raise CapacityError("segment stream must start at t=0")

    @classmethod
    def from_list(
        cls, segments: List[Tuple[float, float]], average_rate: Optional[float] = None
    ) -> "PiecewiseCapacity":
        """Build from an explicit finite breakpoint list."""
        for (t1, r1), (t2, _r2) in zip(segments, segments[1:]):
            if t2 <= t1:
                raise CapacityError(f"non-increasing breakpoint {t2} after {t1}")
            if r1 < 0:
                raise CapacityError(f"negative rate {r1} at t={t1}")
        if average_rate is None:
            # Time-average over the covered span (last rate held forever
            # is excluded from the average on purpose).
            if len(segments) >= 2:
                span = segments[-1][0] - segments[0][0]
                work = sum(
                    r * (segments[i + 1][0] - t)
                    for i, (t, r) in enumerate(segments[:-1])
                )
                average_rate = work / span if span > 0 else segments[-1][1]
            else:
                average_rate = segments[0][1]
        return cls(iter(list(segments)), average_rate)

    # ------------------------------------------------------------------
    def _pull(self) -> bool:
        """Materialize one more segment; False when the stream ended."""
        if self._exhausted:
            return False
        try:
            t, r = next(self._iter)
        except StopIteration:
            self._exhausted = True
            return False
        if r < 0:
            raise CapacityError(f"negative rate {r} at t={t}")
        if self._times and t <= self._times[-1]:
            raise CapacityError(
                f"non-increasing breakpoint {t} after {self._times[-1]}"
            )
        self._times.append(float(t))
        self._rates.append(float(r))
        return True

    def _ensure(self, t: float) -> None:
        """Generate segments until the profile covers time ``t``."""
        while not self._exhausted and self._times[-1] <= t:
            for _ in range(self._CHUNK):
                if not self._pull():
                    break

    def _index(self, t: float) -> int:
        self._ensure(t)
        return bisect.bisect_right(self._times, t) - 1

    # ------------------------------------------------------------------
    def rate_at(self, t: float) -> float:
        if t < 0:
            raise CapacityError(f"negative time {t}")
        return self._rates[self._index(t)]

    def work(self, t1: float, t2: float) -> float:
        if t2 < t1:
            raise CapacityError(f"bad interval [{t1}, {t2}]")
        if t2 == t1:
            return 0.0
        self._ensure(t2)
        i = self._index(t1)
        total = 0.0
        t = t1
        while t < t2:
            seg_end = self._times[i + 1] if i + 1 < len(self._times) else float("inf")
            step_end = min(seg_end, t2)
            total += self._rates[i] * (step_end - t)
            t = step_end
            i += 1
        return total

    def finish_time(self, start: float, length: float) -> float:
        if length <= 0:
            return start
        i = self._index(start)
        t = start
        remaining = float(length)
        # Safety valve against a profile that is zero forever.
        zero_span = 0.0
        max_zero_span = 1e9 / max(self.average_rate, 1.0)
        while True:
            rate = self._rates[i]
            seg_end = self._times[i + 1] if i + 1 < len(self._times) else float("inf")
            if seg_end == float("inf"):
                self._ensure(t + 1.0)
                if i + 1 < len(self._times):
                    seg_end = self._times[i + 1]
            if rate > 0:
                can_do = rate * (seg_end - t) if seg_end != float("inf") else float("inf")
                if can_do >= remaining:
                    return t + remaining / rate
                remaining -= can_do
                zero_span = 0.0
            else:
                if seg_end == float("inf"):
                    raise CapacityError(
                        f"{self.name}: rate is zero forever after t={t}"
                    )
                zero_span += seg_end - t
                if zero_span > max_zero_span:
                    raise CapacityError(
                        f"{self.name}: stalled at rate 0 for {zero_span:.3g}s"
                    )
            t = seg_end
            i += 1
            self._ensure(t)
            if i >= len(self._times):
                i = len(self._times) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PiecewiseCapacity({self.name}, avg={self.average_rate:.9g} b/s, "
            f"{len(self._times)} segments materialized)"
        )
