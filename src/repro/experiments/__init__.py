"""Experiment modules: one per table/figure of the paper's evaluation.

| Module | Paper artifact |
|---|---|
| ``table1`` | Table 1 (fairness of WFQ/FQS/SCFQ/DRR vs SFQ) |
| ``examples_1_2`` | Examples 1 and 2 (WFQ's weaknesses) |
| ``figure1`` | Figure 1(b): TCP fairness over a variable-rate server |
| ``figure2a`` | Figure 2(a): max-delay delta, WFQ vs SFQ |
| ``figure2b`` | Figure 2(b): average delay, WFQ vs SFQ |
| ``figure3`` | Figure 3(b): weighted shares on a fluctuating interface |
| ``throughput_bounds`` | Theorems 2-3 |
| ``delay_bounds_exp`` | Theorems 4-5, eq. 56-57 |
| ``end_to_end_exp`` | Theorem 6 / Corollary 1 |
| ``link_sharing_exp`` | Section 3, Example 3 + recursive bounds |
| ``delay_shifting`` | Section 3, eq. 69-73 |
| ``delay_edd_exp`` | Theorem 7 (separation of delay and throughput) |
| ``fair_airport_exp`` | Appendix B, Theorems 8-9 |

The registry below is the single source of truth for *runnable*
experiments: the CLI (``python -m repro run``/``list``), the report
generator, and the campaign runner all dispatch through it. Entries are
lazy ``module:function`` targets so ``python -m repro list`` never
imports a simulation module.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict

from repro.experiments.harness import (
    ExperimentResult,
    comparison_row,
    geometric_sweep,
)

#: CLI name -> lazy ``module:function`` target returning ExperimentResult.
REGISTRY: Dict[str, str] = {
    "table1": "repro.experiments.table1:run_table1",
    "example1": "repro.experiments.examples_1_2:run_example1",
    "example2": "repro.experiments.examples_1_2:run_example2",
    "figure1": "repro.experiments.figure1:run_figure1",
    "figure2a": "repro.experiments.figure2a:run_figure2a",
    "figure2b": "repro.experiments.figure2b:run_figure2b",
    "figure3": "repro.experiments.figure3:run_figure3",
    "throughput": "repro.experiments.throughput_bounds:run_throughput_bounds",
    "delay": "repro.experiments.delay_bounds_exp:run_delay_bounds",
    "e2e": "repro.experiments.end_to_end_exp:run_end_to_end",
    "linkshare": "repro.experiments.link_sharing_exp:run_link_sharing",
    "shifting": "repro.experiments.delay_shifting:run_delay_shifting",
    "edd": "repro.experiments.delay_edd_exp:run_delay_edd",
    "fa": "repro.experiments.fair_airport_exp:run_fair_airport",
    "ebf": "repro.experiments.ebf_delay:run_ebf_delay",
    "residual": "repro.experiments.residual_exp:run_residual",
    "vbr": "repro.experiments.vbr_rates:run_vbr_rates",
    "interop": "repro.experiments.interop:run_interop",
    "stress": "repro.experiments.stress:run_stress",
    "scale": "repro.experiments.scale:run_scale",
    "faults": "repro.experiments.fault_tolerance:run_fault_tolerance",
    "chaos": "repro.chaos.experiment:run_chaos_case",
    "robust-figure1": "repro.experiments.robustness:run_figure1_robustness",
    "robust-figure2b": "repro.experiments.robustness:run_figure2b_robustness",
    "complexity": "repro.experiments.complexity:run_complexity",
    "pifo_fidelity": "repro.experiments.pifo_fidelity:run_pifo_fidelity",
}

#: One-line description per registered experiment (``python -m repro list``).
DESCRIPTIONS: Dict[str, str] = {
    "table1": "Table 1: fairness of WFQ/FQS/SCFQ/DRR vs SFQ",
    "example1": "Example 1: WFQ >= 2x the fairness lower bound",
    "example2": "Example 2: WFQ unfair on a variable-rate server",
    "figure1": "Figure 1(b): TCP fairness over a variable-rate server",
    "figure2a": "Figure 2(a): max-delay delta, SFQ vs WFQ (analytic)",
    "figure2b": "Figure 2(b): avg delay of low-throughput flows",
    "figure3": "Figure 3(b): weighted shares on a fluctuating interface",
    "throughput": "Theorems 2/3: throughput guarantees (FC/EBF)",
    "delay": "Theorems 4/5 + eq. 56-57: delay guarantees",
    "e2e": "Corollary 1: end-to-end delay over K hops",
    "linkshare": "Example 3: hierarchical link sharing",
    "shifting": "Delay shifting (eq. 69-73)",
    "edd": "Theorem 7: Delay EDD on FC servers",
    "fa": "Fair Airport (Theorems 8/9)",
    "ebf": "Theorem 5: statistical delay tail on EBF servers",
    "residual": "Section 2.3: priority residual is FC(C-rho, sigma)",
    "vbr": "Section 2.3: generalized SFQ with per-packet rates",
    "interop": "Section 2.4: heterogeneous schedulers interoperate",
    "stress": "Theorem 1 under Pareto traffic + Gilbert-Elliott link",
    "scale": "Hierarchical link-sharing at 10^3..10^6 flows with churn "
             "(array backend, vectorized arrivals)",
    "faults": "Fault tolerance: link outage + flow churn, invariant monitors",
    "chaos": "Chaos case: randomized fault schedule vs one scheduler, "
             "invariant monitors on",
    "robust-figure1": "Robustness: Figure 1(b) across buffers and seeds",
    "robust-figure2b": "Robustness: Figure 2(b) excess across seeds",
    "complexity": "Complexity accounting: GPS work vs self-clocking",
    "pifo_fidelity": "SP-PIFO band sweep: inversion rate + throughput "
                     "error vs exact SFQ, k in {1..32}",
}

#: Experiments whose run function accepts a ``seed=`` keyword. The
#: campaign runner only fans these out across seed slots; the rest are
#: deterministic and run exactly once per parameter set.
ACCEPTS_SEED = frozenset(
    {"table1", "figure1", "figure2b", "ebf", "residual", "vbr", "stress",
     "faults", "chaos", "scale", "pifo_fidelity"}
)

#: Experiments whose run function accepts a ``duration=`` keyword.
ACCEPTS_DURATION = frozenset({"figure1", "figure2b"})


def resolve_target(target: str) -> Callable[..., ExperimentResult]:
    """Import ``module:function`` and return the callable."""
    module_name, _, func_name = target.partition(":")
    if not module_name or not func_name:
        raise ValueError(f"malformed experiment target {target!r}")
    module = importlib.import_module(module_name)
    return getattr(module, func_name)


def load_experiment(name: str) -> Callable[..., ExperimentResult]:
    """Return the run function for a registered experiment (lazy import)."""
    return resolve_target(REGISTRY[name])


__all__ = [
    "ExperimentResult",
    "comparison_row",
    "geometric_sweep",
    "REGISTRY",
    "DESCRIPTIONS",
    "ACCEPTS_SEED",
    "ACCEPTS_DURATION",
    "resolve_target",
    "load_experiment",
]
