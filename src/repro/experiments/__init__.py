"""Experiment modules: one per table/figure of the paper's evaluation.

| Module | Paper artifact |
|---|---|
| ``table1`` | Table 1 (fairness of WFQ/FQS/SCFQ/DRR vs SFQ) |
| ``examples_1_2`` | Examples 1 and 2 (WFQ's weaknesses) |
| ``figure1`` | Figure 1(b): TCP fairness over a variable-rate server |
| ``figure2a`` | Figure 2(a): max-delay delta, WFQ vs SFQ |
| ``figure2b`` | Figure 2(b): average delay, WFQ vs SFQ |
| ``figure3`` | Figure 3(b): weighted shares on a fluctuating interface |
| ``throughput_bounds`` | Theorems 2-3 |
| ``delay_bounds_exp`` | Theorems 4-5, eq. 56-57 |
| ``end_to_end_exp`` | Theorem 6 / Corollary 1 |
| ``link_sharing_exp`` | Section 3, Example 3 + recursive bounds |
| ``delay_shifting`` | Section 3, eq. 69-73 |
| ``delay_edd_exp`` | Theorem 7 (separation of delay and throughput) |
| ``fair_airport_exp`` | Appendix B, Theorems 8-9 |
"""

from repro.experiments.harness import ExperimentResult, comparison_row, geometric_sweep

__all__ = ["ExperimentResult", "comparison_row", "geometric_sweep"]
