"""Section 2.4: heterogeneous schedulers interoperate end-to-end.

"To derive Corollary 1, we have only required the scheduling algorithm
at each server to satisfy (62). Hence, any scheduling algorithm that
satisfies (62) (for example, Virtual Clock, WFQ, and SCFQ) can
interoperate to provide end-to-end guarantee."

The experiment runs one tagged flow through a 3-hop path whose servers
run **different** disciplines — SFQ, then Virtual Clock, then SCFQ —
each with its own (62)-style β:

* SFQ (Thm 4):    β = Σ_{n≠f} l_n^max/C + l/C
* Virtual Clock:  β = l/r + l_max/C
* SCFQ (eq. 56):  β = Σ_{n≠f} l_n^max/C + l/r

and checks every packet against the composed Corollary 1 bound.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.delay_bounds import expected_arrival_times
from repro.analysis.end_to_end import deterministic_path_bound
from repro.core import Packet, Scheduler
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.network import Tandem
from repro.servers import ConstantCapacity
from repro.simulation import Simulator

CAPACITY = 1_000_000.0
PROP = 0.005
TAGGED = ("f", 200_000.0, 1600, 6)
CROSS: Sequence[Tuple[str, float, int, int]] = (
    ("x1", 300_000.0, 1600, 8),
    ("x2", 300_000.0, 800, 8),
)

HOPS: Sequence[Tuple[str, Callable[[], Scheduler]]] = (
    ("SFQ", lambda: make_scheduler("SFQ", auto_register=False)),
    ("VirtualClock", lambda: make_scheduler("VirtualClock", auto_register=False)),
    ("SCFQ", lambda: make_scheduler("SCFQ", auto_register=False)),
)


def _beta(hop_name: str) -> float:
    flow, rate, length, _burst = TAGGED
    sum_lmax_others = sum(l for _f, _r, l, _b in CROSS)
    l_max = max([length] + [l for _f, _r, l, _b in CROSS])
    if hop_name == "SFQ":
        return sum_lmax_others / CAPACITY + length / CAPACITY
    if hop_name == "VirtualClock":
        return length / rate + l_max / CAPACITY
    if hop_name == "SCFQ":
        return sum_lmax_others / CAPACITY + length / rate
    raise ValueError(hop_name)


def run_interop(horizon: float = 10.0) -> ExperimentResult:
    """Run the mixed-discipline tandem and check the composed bound."""
    sim = Simulator()
    flow, rate, length, burst = TAGGED
    schedulers = []
    for _name, make in HOPS:
        sched = make()
        sched.add_flow(flow, rate)
        for xflow, xrate, _l, _b in CROSS:
            sched.add_flow(xflow, xrate)
        schedulers.append(sched)
    tandem = Tandem(
        sim,
        schedulers,
        [ConstantCapacity(CAPACITY)] * len(HOPS),
        propagation_delays=[PROP] * (len(HOPS) - 1),
        forward_filter=lambda p: p.flow == flow,
    )

    gap = burst * length / rate
    t, seq = 0.0, 0
    while t < horizon:
        for _ in range(burst):
            sim.at(t, lambda s: tandem.ingress(Packet(flow, length, seqno=s)), seq)
            seq += 1
        t += gap
    for link in tandem.links:
        for xflow, xrate, xlength, xburst in CROSS:
            xgap = xburst * xlength / xrate
            xt, xseq = 0.0, 0
            while xt < horizon:
                for _ in range(xburst):
                    sim.at(
                        xt,
                        lambda lk, s, fl, lb: lk.send(Packet(fl, lb, seqno=s)),
                        link, xseq, xflow, xlength,
                    )
                    xseq += 1
                xt += xgap
    sim.run(until=horizon * 2)

    records = sorted(
        (r for r in tandem.links[0].tracer.for_flow(flow) if r.departure is not None),
        key=lambda r: r.seqno,
    )
    eats = expected_arrival_times(
        [r.arrival for r in records],
        [r.length for r in records],
        [rate] * len(records),
    )
    eat_by_seq = {r.seqno: e for r, e in zip(records, eats)}
    betas = [_beta(name) for name, _make in HOPS]
    taus = [PROP] * (len(HOPS) - 1)
    exits = {s: t for t, s in tandem.sink.series(flow)}
    worst_slack = float("inf")
    max_delay = 0.0
    checked = 0
    arrival_by_seq = {r.seqno: r.arrival for r in records}
    for seqno, eat in eat_by_seq.items():
        exit_time = exits.get(seqno)
        if exit_time is None:
            continue
        checked += 1
        bound = deterministic_path_bound(eat, betas, taus)
        worst_slack = min(worst_slack, bound - exit_time)
        max_delay = max(max_delay, exit_time - arrival_by_seq[seqno])

    result = ExperimentResult(
        experiment="Interoperation (Section 2.4)",
        description=(
            "One flow through SFQ -> VirtualClock -> SCFQ hops; the "
            "composed Corollary 1 bound from per-algorithm betas must "
            "hold packet-wise."
        ),
        headers=["quantity", "value"],
    )
    for (name, _make), beta in zip(HOPS, betas):
        result.add_row(f"beta at {name} hop (ms)", beta * 1e3)
    result.add_row("packets checked", checked)
    result.add_row("measured max e2e delay (s)", max_delay)
    result.add_row("worst slack vs composed bound (s)", worst_slack)
    result.note("Corollary 1 needs only per-hop (62) guarantees — the "
                "disciplines need not match.")
    result.data.update(worst_slack=worst_slack, max_delay=max_delay,
                       betas=betas, checked=checked)
    return result
