"""Section 3, eq. 69-73: delay shifting via hierarchical partitioning.

Flat SFQ over |Q| equal-length flows on FC(C, δ) bounds every packet by
eq. 69. Partitioning Q into K classes and scheduling hierarchically
gives the per-class bound of eq. 71, built from the class's eq. 65 FC
parameters. A class satisfying eq. 73,

.. math:: \\frac{|Q_i| + 1}{|Q| - K} < \\frac{C_i}{C},

gets a *smaller* bound than under flat SFQ — at the expense of the
others. The experiment compares flat-vs-hierarchical analytic bounds
and the measured max delays for a favored small class given a generous
rate slice.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.delay_bounds import (
    delay_shift_condition,
    flat_sfq_bound_equal_lengths,
    partitioned_sfq_bound_equal_lengths,
)
from repro.core import HierarchicalScheduler, Packet
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator

LINK = 16_000.0
PACKET = 400
N_FAST = 2  # favored partition Q_1
N_SLOW = 10  # the rest, Q_2
FAST_SHARE = 0.5  # C_1 = C/2 although |Q_1| << |Q_2|
HORIZON = 40.0


def _flows() -> List[str]:
    return [f"fast{i}" for i in range(N_FAST)] + [f"slow{i}" for i in range(N_SLOW)]


def _per_flow_rate(flow: str) -> float:
    if flow.startswith("fast"):
        return LINK * FAST_SHARE / N_FAST
    return LINK * (1 - FAST_SHARE) / N_SLOW


def _inject_all(sim: Simulator, send) -> None:
    """CBR-at-reservation arrivals for every flow (EAT = arrival)."""
    for flow in _flows():
        rate = _per_flow_rate(flow)
        gap = PACKET / rate
        n = int(HORIZON / gap)
        for i in range(n):
            sim.at(i * gap, lambda fl, s: send(Packet(fl, PACKET, seqno=s)), flow, i)


def _max_delay(link: Link, flows: List[str]) -> float:
    worst = 0.0
    for flow in flows:
        delays = link.tracer.delays(flow)
        if delays:
            worst = max(worst, max(delays))
    return worst


def run_flat() -> Link:
    """Flat SFQ over all flows on the full link (the eq. 69 baseline)."""
    sim = Simulator()
    sched = make_scheduler("SFQ", auto_register=False)
    for flow in _flows():
        sched.add_flow(flow, _per_flow_rate(flow))
    link = Link(sim, sched, ConstantCapacity(LINK), name="flat")
    _inject_all(sim, link.send)
    sim.run(until=HORIZON * 1.2)
    return link


def run_partitioned() -> Link:
    """Two-class hierarchical split of the same workload (eq. 71)."""
    sim = Simulator()
    hs = HierarchicalScheduler()
    hs.add_class("root", "fast", weight=LINK * FAST_SHARE)
    hs.add_class("root", "slow", weight=LINK * (1 - FAST_SHARE))
    for flow in _flows():
        hs.attach_flow(
            flow, "fast" if flow.startswith("fast") else "slow", _per_flow_rate(flow)
        )
    link = Link(sim, hs, ConstantCapacity(LINK), name="partitioned")
    _inject_all(sim, link.send)
    sim.run(until=HORIZON * 1.2)
    return link


def run_delay_shifting() -> ExperimentResult:
    """Analytic eq. 69/71/73 and measured flat-vs-hierarchical delays."""
    q_total = N_FAST + N_SLOW
    k = 2
    c1 = LINK * FAST_SHARE
    condition = delay_shift_condition(N_FAST, q_total, k, c1, LINK)
    flat_bound = flat_sfq_bound_equal_lengths(0.0, q_total, PACKET, LINK, 0.0)
    part_bound = partitioned_sfq_bound_equal_lengths(
        0.0, N_FAST, c1, k, PACKET, LINK, 0.0
    )

    flat_link = run_flat()
    part_link = run_partitioned()
    fast_flows = [f for f in _flows() if f.startswith("fast")]
    slow_flows = [f for f in _flows() if f.startswith("slow")]

    result = ExperimentResult(
        experiment="Delay shifting (eq. 69-73)",
        description=(
            f"{N_FAST} favored flows get a C/2 class vs {N_SLOW} others; "
            "eq. 73 predicts the favored class's bound shrinks under "
            "hierarchical scheduling."
        ),
        headers=["quantity", "flat SFQ", "hierarchical", "shifted?"],
    )
    result.add_row(
        "analytic bound, favored class (ms)",
        flat_bound * 1e3,
        part_bound * 1e3,
        "yes" if part_bound < flat_bound else "no",
    )
    flat_fast = _max_delay(flat_link, fast_flows)
    part_fast = _max_delay(part_link, fast_flows)
    result.add_row(
        "measured max delay, favored flows (ms)",
        flat_fast * 1e3,
        part_fast * 1e3,
        "yes" if part_fast < flat_fast else "no",
    )
    flat_slow = _max_delay(flat_link, slow_flows)
    part_slow = _max_delay(part_link, slow_flows)
    result.add_row(
        "measured max delay, other flows (ms)",
        flat_slow * 1e3,
        part_slow * 1e3,
        "shifted up" if part_slow >= flat_slow else "no",
    )
    result.note(f"eq. 73 condition ({N_FAST}+1)/({q_total}-{k}) < {FAST_SHARE}: {condition}")
    result.data.update(
        condition=condition,
        flat_bound=flat_bound,
        part_bound=part_bound,
        measured={
            "flat_fast": flat_fast,
            "part_fast": part_fast,
            "flat_slow": flat_slow,
            "part_slow": part_slow,
        },
    )
    return result
