"""Section 3 / Example 3: hierarchical link sharing.

The link-sharing structure: root -> {A, B}, A -> {C, D}, all weights 1.
The bandwidth class A receives *fluctuates* as B toggles between idle
and busy — so the scheduler apportioning A's bandwidth between C and D
faces a variable-rate virtual server, which is why Section 3 requires a
scheduler that is fair on variable-rate servers (SFQ). The experiment
drives the tree through three phases:

* phase 1 (B busy, D idle): C gets all of A's 50%;
* phase 2 (B busy, D active): C and D each get 25% of the link;
* phase 3 (B idle, C and D active): A expands to the full link and C
  and D each get 50% — instantly, with no penalty for D's late start.

It also validates the *recursive* guarantees: by eq. 65 class A's
virtual server is FC, so Theorem 2's throughput floor — computed purely
from A's derived FC parameters — must hold for C's flow, and does.

Implementation note: interior nodes schedule one offered packet per
child (one-packet lookahead), so subclass queues live in the leaves.
This is also why a mis-configured interior WFQ is partially insulated
here: virtual-time runaway requires a standing queue *at the WFQ node*.
The flat-server WFQ failure is demonstrated in Table 1 / Example 2.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.delay_bounds import (
    hierarchical_fc_params,
    sfq_throughput_lower_bound,
)
from repro.core import HierarchicalScheduler, Packet
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator

LINK = 10_000.0  # bits/s
PACKET = 500
PHASE = 20.0  # seconds per phase
HORIZON = 3 * PHASE


def _build() -> HierarchicalScheduler:
    hs = HierarchicalScheduler()
    hs.add_class("root", "A", weight=1.0)
    hs.add_class("root", "B", weight=1.0)
    hs.add_class("A", "C", weight=1.0)
    hs.add_class("A", "D", weight=1.0)
    hs.attach_flow("fc", "C", weight=1.0)
    hs.attach_flow("fd", "D", weight=1.0)
    hs.attach_flow("fb", "B", weight=1.0)
    return hs


def run_link_sharing() -> ExperimentResult:
    """Example 3's three-phase scenario under hierarchical SFQ."""
    sim = Simulator()
    hs = _build()
    link = Link(sim, hs, ConstantCapacity(LINK), name="link-sharing")

    def inject(flow: str, start: float, stop: float) -> None:
        n = int((stop - start) * LINK / PACKET)
        for i in range(n):
            link.send(Packet(flow, PACKET, seqno=i))

    # C greedy throughout; D joins at phase 2; B busy for phases 1-2
    # (its backlog is sized to drain at the phase-3 boundary).
    sim.at(0.0, inject, "fc", 0.0, HORIZON)
    sim.at(PHASE, inject, "fd", PHASE, HORIZON)
    b_bits_budget = LINK / 2 * (2 * PHASE)  # B's fair share of phases 1+2
    sim.at(0.0, lambda: [link.send(Packet("fb", PACKET, seqno=i))
                         for i in range(int(b_bits_budget / PACKET))])
    sim.run(until=HORIZON)

    def phase_work(idx: int) -> Dict[str, float]:
        t1, t2 = idx * PHASE, (idx + 1) * PHASE
        return {
            f: link.tracer.work_in_interval(f, t1, t2) for f in ("fc", "fd", "fb")
        }

    phases = [phase_work(0), phase_work(1), phase_work(2)]

    result = ExperimentResult(
        experiment="Example 3 (hierarchical link sharing)",
        description=(
            "Work (bits) per 20 s phase; root->{A,B}, A->{C,D}, all "
            "weights 1. B busy in phases 1-2; D active from phase 2."
        ),
        headers=["phase", "C", "D", "B", "expected C:D:B of link"],
    )
    result.add_row("1: B busy, D idle", phases[0]["fc"], phases[0]["fd"], phases[0]["fb"], "50:0:50")
    result.add_row("2: B busy, D active", phases[1]["fc"], phases[1]["fd"], phases[1]["fb"], "25:25:50")
    result.add_row("3: B idle", phases[2]["fc"], phases[2]["fd"], phases[2]["fb"], "50:50:0")

    # Recursive Theorem 2 check for phase 2 (A is FC by eq. 65).
    r_a = LINK / 2
    _rate, delta_a = hierarchical_fc_params(r_a, 2 * PACKET, LINK, 0.0, PACKET)
    r_c = r_a / 2
    floor = sfq_throughput_lower_bound(
        r_c, PHASE, 2 * PACKET, r_a, delta_a, PACKET
    )
    measured = phases[1]["fc"]
    result.note(
        f"recursive Theorem 2 (phase 2): flow C floor from A's eq. 65 FC "
        f"params = {floor:.0f} bits; measured = {measured:.0f} bits"
    )
    result.data["phases"] = phases
    result.data["recursive_floor"] = floor
    result.data["recursive_measured"] = measured
    return result
