"""Theorem 7: Delay EDD on a Fluctuation Constrained server, and the
separation of delay and throughput allocation inside an SFQ hierarchy.

Delay EDD decouples a flow's deadline d_f from its rate r_f: a
low-throughput flow can buy a small deadline without buying bandwidth.
Theorem 7: if the flow set passes the schedulability test (eq. 67) on an
FC(C, δ) server, every packet departs by ``D(p) + l_max/C + δ/C``.

Section 3's application: aggregate the deadline-sensitive flows into one
class of an SFQ hierarchy and run Delay EDD inside it — legal because
the class's virtual server is itself FC (eq. 65). The experiment checks
the bound both on a raw FC link and inside a hierarchy, and shows the
separation: a 1/8-rate flow with a small deadline beats the big flows'
delays, which pure SFQ cannot arrange.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.admission import delay_edd_schedulable
from repro.analysis.delay_bounds import edd_delay_bound, hierarchical_fc_params
from repro.core import HierarchicalScheduler, Packet
from repro.core.registry import make_scheduler
from repro.core.tagmath import eat_step
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link, TwoRateSquareWave
from repro.simulation import Simulator

CAPACITY = 8_000.0
PACKET = 400
#: (flow, rate, deadline): the small flow gets the tightest deadline.
EDD_FLOWS: Sequence[Tuple[str, float, float]] = (
    ("urgent", 500.0, 0.3),
    ("bulk1", 2000.0, 2.0),
    ("bulk2", 2000.0, 2.0),
)
HORIZON = 30.0


def _inject_cbr(sim: Simulator, send, flows: Sequence[Tuple[str, float, float]]) -> None:
    for flow, rate, _deadline in flows:
        gap = PACKET / rate
        n = int(HORIZON / gap)
        for i in range(n):
            sim.at(i * gap, lambda fl, s: send(Packet(fl, PACKET, seqno=s)), flow, i)


def _deadline_check(link: Link, capacity: float, delta: float) -> Dict[str, float]:
    """Worst slack of eq. 68 per flow (>= 0 required)."""
    out: Dict[str, float] = {}
    deadlines = dict((f, d) for f, _r, d in EDD_FLOWS)
    rates = dict((f, r) for f, r, _d in EDD_FLOWS)
    for flow in deadlines:
        records = sorted(link.tracer.departed(flow), key=lambda r: r.seqno)
        worst = float("inf")
        prev_eat = float("-inf")
        prev_service = 0.0
        for record in records:
            eat, service = eat_step(
                record.arrival, prev_eat, prev_service, record.length, rates[flow]
            )
            prev_eat, prev_service = eat, service
            bound = edd_delay_bound(eat + deadlines[flow], PACKET, capacity, delta)
            worst = min(worst, bound - record.departure)
        out[flow] = worst
    return out


def run_edd_flat(delta_kind: str) -> Tuple[Link, float, float]:
    """Delay EDD directly on a constant or FC link."""
    sim = Simulator()
    edd = make_scheduler("DelayEDD", auto_register=False)
    for flow, rate, deadline in EDD_FLOWS:
        edd.add_flow_with_deadline(flow, rate, deadline)
    if delta_kind == "constant":
        capacity, delta, rate_c = ConstantCapacity(CAPACITY), 0.0, CAPACITY
    else:
        square = TwoRateSquareWave(2 * CAPACITY, 0.5, 0.0, 0.5)
        capacity, delta, rate_c = square, square.delta, CAPACITY
    link = Link(sim, edd, capacity, name=f"edd-{delta_kind}")
    _inject_cbr(sim, link.send, EDD_FLOWS)
    sim.run(until=HORIZON * 1.5)
    return link, rate_c, delta


def run_edd_in_hierarchy() -> Tuple[Link, float, float]:
    """Delay EDD class under an SFQ root sharing with a bulk class."""
    sim = Simulator()
    hs = HierarchicalScheduler()
    edd = make_scheduler("DelayEDD", auto_register=False)
    for flow, rate, deadline in EDD_FLOWS:
        edd.add_flow_with_deadline(flow, rate, deadline)
    rt_rate = sum(r for _f, r, _d in EDD_FLOWS)  # 4500
    hs.add_class("root", "realtime", weight=rt_rate, scheduler=edd)
    hs.add_class("root", "besteffort", weight=CAPACITY - rt_rate)
    for flow, rate, _deadline in EDD_FLOWS:
        # Already registered with deadlines; attach_flow just binds them.
        hs.attach_flow(flow, "realtime", weight=rate)
    hs.attach_flow("be", "besteffort", weight=CAPACITY - rt_rate)
    link = Link(sim, hs, ConstantCapacity(CAPACITY), name="edd-hier")
    _inject_cbr(sim, link.send, EDD_FLOWS)
    # Greedy best-effort traffic keeps the realtime class at its share.
    n = int(HORIZON * CAPACITY / PACKET)
    sim.at(0.0, lambda: [link.send(Packet("be", PACKET, seqno=i)) for i in range(n)])
    sim.run(until=HORIZON * 1.5)
    # eq. 65: the realtime class's virtual server FC parameters.
    _r, delta_class = hierarchical_fc_params(
        rt_rate, 2 * PACKET, CAPACITY, 0.0, PACKET
    )
    return link, rt_rate, delta_class


def run_delay_edd() -> ExperimentResult:
    """Theorem 7 on flat FC links and inside an SFQ hierarchy."""
    flows_spec = [(r, float(PACKET), d) for _f, r, d in EDD_FLOWS]
    schedulable = delay_edd_schedulable(flows_spec, CAPACITY)

    result = ExperimentResult(
        experiment="Theorem 7 (Delay EDD on FC servers)",
        description=(
            "Worst slack (s) of eq. 68 per flow; >= 0 everywhere means "
            "the deadline guarantee holds. The urgent flow has 1/8 the "
            "bulk rate but a ~7x tighter deadline."
        ),
        headers=["server", "flow", "worst slack (s)", "max delay (s)"],
    )
    data: Dict[str, Dict[str, float]] = {}
    cases = [
        ("constant", *run_edd_flat("constant")),
        ("FC square", *run_edd_flat("square")),
        ("SFQ hierarchy (eq. 65 FC)", *run_edd_in_hierarchy()),
    ]
    for name, link, rate_c, delta in cases:
        checks = _deadline_check(link, rate_c, delta)
        data[name] = checks
        for flow, _r, _d in EDD_FLOWS:
            delays = link.tracer.delays(flow)
            result.add_row(name, flow, checks[flow], max(delays) if delays else 0.0)

    result.note(f"eq. 67 schedulability test passes: {schedulable}")
    result.note(
        "separation of delay and throughput: the low-rate urgent flow's "
        "max delay stays below the bulk flows' although its rate is 4x "
        "smaller — impossible under pure SFQ where delay tracks rate."
    )
    result.data["checks"] = data
    result.data["schedulable"] = schedulable
    return result
