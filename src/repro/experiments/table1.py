"""Table 1: comparative fairness of WFQ, FQS, SCFQ, DRR — and SFQ.

The paper's Table 1 is analytic; we reproduce it in two ways:

1. the analytic columns — each algorithm's H(f, m) bound as a multiple
   of the Golestani lower bound
   :math:`\\frac{1}{2}(l_f^{max}/r_f + l_m^{max}/r_m)`;

2. an empirical column — the maximum normalized service gap actually
   observed for two continuously backlogged flows with heterogeneous
   packet sizes, on a constant-rate server and on a variable-rate
   (square-wave FC) server. The start-time/self-clocked algorithms stay
   within their bound on both; WFQ (and FQS) blow up on the
   variable-rate server (Example 2's mechanism); DRR's gap grows with
   the quantum scale.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.core import Packet, Scheduler
from repro.core.registry import make_scheduler
from repro.analysis.fairness import (
    empirical_fairness_measure,
    golestani_lower_bound,
    sfq_fairness_bound,
)
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link, TwoRateSquareWave
from repro.simulation import Simulator

CAPACITY = 2000.0  # bits/s
RF, RM = 1000.0, 500.0  # flow weights (rates)
PACKET_SIZES = (250, 500, 1000)
N_PACKETS = 400


def _workload(rng: random.Random) -> Tuple[List[int], List[int]]:
    """Per-flow packet-size sequences (both flows stay backlogged)."""
    sizes_f = [rng.choice(PACKET_SIZES) for _ in range(N_PACKETS)]
    sizes_m = [rng.choice(PACKET_SIZES) for _ in range(N_PACKETS)]
    return sizes_f, sizes_m


def measure_fairness(
    make_scheduler: Callable[[], Scheduler],
    variable_rate: bool,
    seed: int = 7,
) -> float:
    """Empirical H(f, m) for two greedy flows under one scheduler."""
    rng = random.Random(seed)
    sizes_f, sizes_m = _workload(rng)
    sim = Simulator()
    sched = make_scheduler()
    sched.add_flow("f", RF)
    sched.add_flow("m", RM)
    if variable_rate:
        capacity = TwoRateSquareWave(2 * CAPACITY, 5.0, 0.0, 5.0)
    else:
        capacity = ConstantCapacity(CAPACITY)
    link = Link(sim, sched, capacity)

    # Flow m joins late (after the server's slow phase): this is the
    # situation where WFQ's assumed-capacity virtual time has raced
    # ahead of reality (Example 2's mechanism). Fair algorithms are
    # insensitive to the join time; H is measured only over the common
    # backlog interval either way.
    join_m = 5.0

    def inject_f() -> None:
        for i, size in enumerate(sizes_f):
            link.send(Packet("f", size, seqno=i))

    def inject_m() -> None:
        for i, size in enumerate(sizes_m):
            link.send(Packet("m", size, seqno=i))

    sim.at(0.0, inject_f)
    sim.at(join_m, inject_m)
    sim.run()
    return empirical_fairness_measure(link.tracer, "f", "m", RF, RM)


def run_table1(seed: int = 7) -> ExperimentResult:
    """Regenerate Table 1 with analytic and measured columns."""
    lmax = max(PACKET_SIZES)
    lower = golestani_lower_bound(lmax, RF, lmax, RM)
    sfq_bound = sfq_fairness_bound(lmax, RF, lmax, RM)

    rows: List[Tuple[str, Callable[[], Scheduler], Optional[float]]] = [
        ("SFQ", lambda: make_scheduler("SFQ"), sfq_bound),
        ("SCFQ", lambda: make_scheduler("SCFQ"), sfq_bound),
        ("WFQ", lambda: make_scheduler("WFQ", capacity=CAPACITY), None),
        ("FQS", lambda: make_scheduler("FQS", capacity=CAPACITY), None),
        # Extension row: WF2Q (Bennett & Zhang 1996) — fairer than WFQ
        # on the correct constant-rate server, but it still builds on
        # the assumed-capacity fluid GPS.
        ("WF2Q (extension)", lambda: make_scheduler("WF2Q", capacity=CAPACITY), None),
        # Quantum = weight/250 x 250-bit units: small quanta (fair-ish).
        ("DRR (quantum=1xlmax)", lambda: make_scheduler("DRR", quantum_scale=lmax / RM), None),
        # Large quanta: the unbounded-unfairness regime of Section 1.2.
        ("DRR (quantum=16xlmax)", lambda: make_scheduler("DRR", quantum_scale=16 * lmax / RM), None),
    ]

    result = ExperimentResult(
        experiment="Table 1",
        description=(
            "Fairness of scheduling algorithms: empirical max normalized "
            "service gap H(f,m), in units of the Golestani lower bound "
            f"(= {lower:.4g}s here). SFQ/SCFQ bound = 2.0 units."
        ),
        headers=[
            "algorithm",
            "H const-rate (units of LB)",
            "H variable-rate (units of LB)",
            "analytic bound (units of LB)",
        ],
    )
    data = {}
    for name, make, bound in rows:
        h_const = measure_fairness(make, variable_rate=False, seed=seed)
        h_var = measure_fairness(make, variable_rate=True, seed=seed)
        bound_units = "" if bound is None else f"{bound / lower:.2f}"
        if name.startswith(("WFQ", "FQS", "WF2Q")):
            bound_units = ">= 2 / unbounded on var-rate"
        if name.startswith("DRR"):
            bound_units = "grows with quantum"
        result.add_row(name, h_const / lower, h_var / lower, bound_units)
        data[name] = {"const": h_const, "variable": h_var, "bound": bound}
    result.note("paper Table 1: WFQ/FQS unfair over variable rate; DRR unbounded")
    result.note("SFQ/SCFQ must stay <= 2.0 units in both columns (Theorem 1)")
    result.data["rows"] = data
    result.data["lower_bound"] = lower
    result.data["sfq_bound"] = sfq_bound
    return result
