"""Figure 3(b): weighted sharing on a variable-rate network interface.

The paper's Section 4 validates its Solaris/FORE-ATM implementation:
three connections with weights 1, 2, 3 each transmit 500,000 4 KB
packets; while all are active throughput splits 1:2:3, after the
weight-3 connection finishes the rest split 1:2, and the survivor
finally gets the full link — all while the realizable interface
bandwidth fluctuates (the host CPU shares cycles).

Substitution (DESIGN.md §3): the FORE NIC is replaced by a simulated
link whose capacity process fluctuates (certified FC); connections are
closed-loop greedy sources. Packet counts are scaled down (the shape is
invariant); the bench asserts the three throughput-ratio phases.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.stats import windowed_throughput
from repro.core import Packet
from repro.core.registry import make_scheduler
from repro.core.packet import mbps
from repro.experiments.harness import ExperimentResult
from repro.servers import FluctuationConstrainedCapacity, Link
from repro.simulation import RandomStreams, Simulator
from repro.traffic import PacedWindowSource

LINK_RATE = mbps(48)  # the paper's measured interface throughput
PACKET = 4096 * 8  # 4 KB packets


def run_figure3(
    packets_per_connection: int = 3000,
    seed: int = 3,
    window: float = 0.25,
) -> ExperimentResult:
    """Three weighted greedy connections on a fluctuating link."""
    sim = Simulator()
    streams = RandomStreams(seed)
    sched = make_scheduler("SFQ", auto_register=False)
    weights = {"w1": 1.0, "w2": 2.0, "w3": 3.0}
    for flow, weight in sorted(weights.items()):
        sched.add_flow(flow, weight)

    capacity = FluctuationConstrainedCapacity(
        guarantee_rate=LINK_RATE * 0.8,
        delta=LINK_RATE * 0.05,  # ~60 ms worth of work
        slot=0.01,
        rng=streams.stream("capacity"),
    )
    link = Link(sim, sched, capacity, name="fig3")

    sources = {}
    for flow in weights:
        source = PacedWindowSource(
            sim,
            flow,
            link.send,
            packet_length=PACKET,
            window=32,
            max_packets=packets_per_connection,
        )
        link.departure_hooks.append(source.on_departure)
        sources[flow] = source
        source.start()
    end = sim.run()

    # Completion times define the three phases.
    finish: Dict[str, float] = {}
    for flow in weights:
        records = link.tracer.departed(flow)
        finish[flow] = records[-1].departure if records else 0.0
    order = sorted(finish, key=finish.get)
    t_first, t_second = finish[order[0]], finish[order[1]]

    def phase_share(t1: float, t2: float) -> Dict[str, float]:
        total = {
            flow: link.tracer.work_in_interval(flow, t1, t2) for flow in weights
        }
        return total

    phase1 = phase_share(0.0, t_first)
    phase2 = phase_share(t_first, t_second)
    phase3 = phase_share(t_second, end)

    result = ExperimentResult(
        experiment="Figure 3(b)",
        description=(
            "Throughput sharing of connections with weights 1:2:3 on a "
            "fluctuating-capacity interface, as connections terminate."
        ),
        headers=["phase", "w1 Mb/s", "w2 Mb/s", "w3 Mb/s", "ratio"],
    )
    for name, (t1, t2), share in (
        ("all active", (0.0, t_first), phase1),
        ("two active", (t_first, t_second), phase2),
        ("one active", (t_second, end), phase3),
    ):
        span = max(t2 - t1, 1e-9)
        rates = {f: share[f] / span / 1e6 for f in weights}
        base = min((r for r in rates.values() if r > 0.01), default=1.0)
        ratio = ":".join(f"{rates[f] / base:.2f}" for f in ("w1", "w2", "w3"))
        result.add_row(name, rates["w1"], rates["w2"], rates["w3"], ratio)
    result.note("paper: ratios 1:2:3, then 1:2, then the full link")
    series = {
        flow: windowed_throughput(link.tracer, flow, window, end)
        for flow in weights
    }
    result.data.update(
        finish=finish,
        phases={"p1": phase1, "p2": phase2, "p3": phase3},
        phase_bounds=(t_first, t_second, end),
        series=series,
    )

    from repro.experiments.charts import ascii_chart

    result.data["charts"] = [
        ascii_chart(
            {
                flow: [(t, rate / 1e6) for t, rate in pts]
                for flow, pts in series.items()
            },
            title="Figure 3(b): per-connection throughput vs time",
            x_label="time (s)",
            y_label="Mb/s",
            height=12,
        )
    ]
    return result
