"""Section 2.3's residual-server analysis.

"If the bandwidth requirement of flows that are given higher priority
can be characterized by a leaky bucket with average rate ρ and
burstiness σ ... the residual bandwidth available to the lower priority
flows can be modeled as fluctuation constrained with parameters
(C − ρ, σ). Hence, Theorem 4 can be used to determine the delay
guarantee of the lower priority flows."

The experiment does exactly that, twice:

1. **analytically** — builds the explicit residual capacity profile
   from a shaped high-priority demand trace
   (:func:`repro.servers.residual.residual_from_demand`) and measures
   its FC burstiness: it must be ≤ σ w.r.t. rate C − ρ;

2. **in vivo** — runs a strict-priority link (shaped high-priority flow
   above an SFQ band) and checks every low-priority packet against the
   Theorem 4 bound computed from the (C − ρ, σ) model, with the
   high-priority packet's non-preemption term.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.analysis.delay_bounds import expected_arrival_times, sfq_delay_bound
from repro.analysis.servers import measure_fc_delta
from repro.core import Packet
from repro.core.registry import make_scheduler
from repro.core.priority import PriorityBands
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link, residual_from_demand
from repro.simulation import Simulator
from repro.traffic import LeakyBucketShaper, OnOffSource

LINK = 10_000.0  # bits/s
HP_SIGMA = 2_000.0  # bits
HP_RHO = 4_000.0  # bits/s
LOW_FLOWS: Sequence[Tuple[str, float, int, int]] = (
    ("lo1", 2000.0, 400, 4),
    ("lo2", 3000.0, 600, 5),
)
HORIZON = 40.0


def _shaped_hp_trace(seed: int, horizon: float) -> List[Tuple[float, int]]:
    """A shaped (sigma, rho) high-priority arrival trace, offline."""
    sim = Simulator()
    out: List[Tuple[float, int]] = []
    shaper = LeakyBucketShaper(
        sim, lambda p: out.append((sim.now, p.length)), HP_SIGMA, HP_RHO
    )
    source = OnOffSource(
        sim,
        "hp",
        shaper.send,
        peak_rate=3 * HP_RHO,
        packet_length=400,
        mean_on=0.4,
        mean_off=0.4,
        rng=random.Random(seed),
        stop_time=horizon,
    )
    source.start()
    sim.run(until=horizon * 1.5)
    return out


def residual_profile_is_fc(seed: int = 31) -> Tuple[float, float]:
    """(measured delta of residual vs C - rho, the sigma claim)."""
    demand = _shaped_hp_trace(seed, HORIZON)
    residual = residual_from_demand(LINK, demand, slot=0.01, horizon=HORIZON)
    measured = measure_fc_delta(residual, LINK - HP_RHO, horizon=HORIZON, step=0.01)
    return measured, HP_SIGMA


def run_priority_link(seed: int = 31) -> Link:
    """Strict-priority link: shaped HP flow above an SFQ low band."""
    sim = Simulator()
    low = make_scheduler("SFQ", auto_register=False)
    bands = PriorityBands([make_scheduler("FIFO", auto_register=False), low])
    bands.assign_flow("hp", 0, weight=HP_RHO)
    for flow, rate, _l, _b in LOW_FLOWS:
        bands.assign_flow(flow, 1, weight=rate)
    link = Link(sim, bands, ConstantCapacity(LINK))

    shaper = LeakyBucketShaper(sim, link.send, HP_SIGMA, HP_RHO)
    OnOffSource(
        sim,
        "hp",
        shaper.send,
        peak_rate=3 * HP_RHO,
        packet_length=400,
        mean_on=0.4,
        mean_off=0.4,
        rng=random.Random(seed),
        stop_time=HORIZON,
    ).start()

    for flow, rate, length, burst in LOW_FLOWS:
        gap = burst * length / rate
        t = 0.0
        seq = 0
        while t < HORIZON:
            for _ in range(burst):
                sim.at(
                    t,
                    lambda fl, lb, s: link.send(Packet(fl, lb, seqno=s)),
                    flow,
                    length,
                    seq,
                )
                seq += 1
            t += gap
    sim.run(until=HORIZON * 1.5)
    return link


def run_residual(seed: int = 31) -> ExperimentResult:
    """Both halves of the Section 2.3 claim."""
    measured_delta, sigma = residual_profile_is_fc(seed)

    link = run_priority_link(seed)
    residual_rate = LINK - HP_RHO
    lmax_low = {f: l for f, _r, l, _b in LOW_FLOWS}
    hp_lmax = 400
    worst: Dict[str, float] = {}
    max_delay: Dict[str, float] = {}
    for flow, rate, length, _burst in LOW_FLOWS:
        records = sorted(link.tracer.departed(flow), key=lambda r: r.seqno)
        eats = expected_arrival_times(
            [r.arrival for r in records],
            [r.length for r in records],
            [rate] * len(records),
        )
        sum_lmax_others = sum(l for f2, l in lmax_low.items() if f2 != flow)
        slack = float("inf")
        worst_delay = 0.0
        for record, eat in zip(records, eats):
            # Theorem 4 on FC(C - rho, sigma), plus one non-preemptable
            # high-priority packet.
            bound = sfq_delay_bound(
                eat, sum_lmax_others, record.length, residual_rate, sigma
            ) + hp_lmax / LINK
            slack = min(slack, bound - record.departure)
            worst_delay = max(worst_delay, record.departure - eat)
        worst[flow] = slack
        max_delay[flow] = worst_delay

    result = ExperimentResult(
        experiment="Residual server (Section 2.3)",
        description=(
            f"High-priority traffic shaped to (sigma={HP_SIGMA:.0f}b, "
            f"rho={HP_RHO:.0f}b/s) on a {LINK:.0f} b/s link; the residual "
            f"must be FC(C-rho, sigma) and Theorem 4 must hold for the "
            "low-priority SFQ band."
        ),
        headers=["check", "value", "requirement"],
    )
    result.add_row(
        "residual profile delta vs C-rho (bits)", measured_delta, f"<= sigma = {sigma:.0f}"
    )
    for flow, rate, _l, _b in LOW_FLOWS:
        result.add_row(
            f"Theorem 4 worst slack, {flow} (s)", worst[flow], ">= 0"
        )
        result.add_row(
            f"max EAT-relative delay, {flow} (s)", max_delay[flow], "informational"
        )
    result.data.update(
        residual_delta=measured_delta,
        sigma=sigma,
        worst_slack=worst,
        max_delay=max_delay,
    )
    return result
