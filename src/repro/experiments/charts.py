"""ASCII chart rendering for figure regeneration.

The paper's figures are line plots (sequence-number vs time, delay vs
utilization, throughput vs time). The benchmarks archive textual tables
plus these ASCII charts so `results/` genuinely *regenerates the
figures*, not just their headline numbers, without any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, float]

#: Glyphs assigned to series in order.
GLYPHS = "*o+x#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Point]],
    width: int = 68,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter/line chart.

    Points are binned onto a width x height grid spanning the data's
    bounding box; later series overwrite earlier ones where they
    collide. Returns a multi-line string with axis annotations and a
    legend.
    """
    named = [(name, [p for p in pts if p is not None]) for name, pts in series.items()]
    named = [(name, pts) for name, pts in named if pts]
    if not named:
        return f"{title}\n(no data)"
    xs = [x for _n, pts in named for x, _y in pts]
    ys = [y for _n, pts in named for _x, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(named):
        glyph = GLYPHS[idx % len(GLYPHS)]
        for x, y in pts:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    lines.append(f"{y_label:>{margin}}")
    for i, row_chars in enumerate(grid):
        if i == 0:
            prefix = f"{top_label:>{margin}}"
        elif i == height - 1:
            prefix = f"{bottom_label:>{margin}}"
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row_chars)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_lo:.4g}"
    x_end = f"{x_hi:.4g}"
    pad = width - len(x_axis) - len(x_end)
    lines.append(
        " " * (margin + 1) + x_axis + " " * max(pad, 1) + x_end + f"  ({x_label})"
    )
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]} = {name}" for i, (name, _p) in enumerate(named)
    )
    lines.append(f"{'':>{margin}} {legend}")
    return "\n".join(lines)


def downsample(points: Sequence[Point], max_points: int = 120) -> List[Point]:
    """Evenly subsample a long series for charting."""
    pts = list(points)
    if len(pts) <= max_points:
        return pts
    stride = len(pts) / max_points
    return [pts[int(i * stride)] for i in range(max_points)] + [pts[-1]]
