"""Figure 1: SFQ vs WFQ fairness over a variable-rate server.

The paper's setup (Section 2.1): three flows cross one switch toward a
single destination over a 2.5 Mb/s link. Source 1 is an MPEG VBR video
stream (1.21 Mb/s average, 50-byte packets) given strict priority;
sources 2 and 3 are TCP Reno flows with 200-byte packets scheduled by
WFQ or SFQ on the *residual* capacity — which therefore fluctuates.
Source 3 starts 500 ms after the others; the run lasts 1 s.

Paper result: under WFQ source 3 is starved (2 packets delivered in its
first 435 ms, vs 145 under SFQ) because WFQ's fluid virtual time is
computed from the full link capacity and races ahead of the real
residual-rate service, so the late flow's tags start far in the future
of the standing queue. Under SFQ sources 2 and 3 receive 189/190
packets in the last 500 ms — virtually equal.

We reproduce the *shape*: near-total starvation of source 3 under WFQ
for a buffer-drain period, versus immediate near-equal sharing under
SFQ. Absolute counts depend on TCP/buffer parameters REAL defaulted
(unavailable); see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core import Scheduler
from repro.core.registry import make_scheduler
from repro.core.packet import mbps
from repro.core.priority import PriorityBands
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link
from repro.simulation import RandomStreams, Simulator
from repro.traffic import VBRVideoSource
from repro.transport import PacketSink, TcpReceiver, TcpSender

LINK_RATE = mbps(2.5)
VIDEO_RATE = mbps(1.21)
VIDEO_PACKET = 50 * 8
TCP_SEGMENT_BYTES = 200
SRC3_START = 0.5
DURATION = 1.0


@dataclass
class Figure1Run:
    """Receive counts for one scheduler variant."""

    algorithm: str
    src2_last_half: int
    src3_last_half: int
    src3_first_435ms: int
    src2_total: int
    src3_total: int
    video_packets: int
    #: (time, seqno) receive series per TCP flow — Figure 1(b)'s axes.
    series: Dict[str, list] = None


def run_figure1_variant(
    algorithm: str,
    seed: int = 1,
    duration: float = DURATION,
    tcp_buffer_packets: int = 240,
    ack_delay: float = 0.002,
) -> Figure1Run:
    """Run the Figure 1 topology with ``algorithm`` in {"SFQ", "WFQ"}."""
    sim = Simulator()
    streams = RandomStreams(seed)

    if algorithm == "SFQ":
        tcp_sched: Scheduler = make_scheduler("SFQ", auto_register=False)
    elif algorithm == "WFQ":
        # The paper: "The WFQ implementation used the link capacity to
        # compute the finish tags" — i.e. the full 2.5 Mb/s, not the
        # fluctuating residual.
        tcp_sched = make_scheduler("WFQ", capacity=LINK_RATE, auto_register=False)
    else:
        raise ValueError(f"algorithm must be SFQ or WFQ, got {algorithm!r}")

    video_band = make_scheduler("FIFO", auto_register=False)
    bands = PriorityBands([video_band, tcp_sched])
    bands.assign_flow("video", 0, weight=VIDEO_RATE)
    bands.assign_flow("tcp2", 1, weight=LINK_RATE / 2)
    bands.assign_flow("tcp3", 1, weight=LINK_RATE / 2)

    link = Link(
        sim,
        bands,
        ConstantCapacity(LINK_RATE),
        name=f"fig1-{algorithm}",
        per_flow_buffer_packets={
            "tcp2": tcp_buffer_packets,
            "tcp3": tcp_buffer_packets,
        },
    )

    sink = PacketSink("dst")
    link.departure_hooks.append(sink.on_packet)

    video = VBRVideoSource(
        sim,
        "video",
        link.send,
        mean_rate=VIDEO_RATE,
        rng=streams.stream("video"),
        packet_length=VIDEO_PACKET,
        stop_time=duration,
    )
    video.start()

    receivers: Dict[str, TcpReceiver] = {}
    senders: Dict[str, TcpSender] = {}
    for flow, start in (("tcp2", 0.0), ("tcp3", SRC3_START)):
        receiver = TcpReceiver(sim, flow, ack_path_delay=ack_delay)
        sender = TcpSender(
            sim,
            flow,
            link.send,
            receiver,
            segment_bytes=TCP_SEGMENT_BYTES,
            start_time=start,
        )
        link.departure_hooks.append(receiver.on_packet)
        receivers[flow] = receiver
        senders[flow] = sender
        sender.start()

    sim.run(until=duration)

    return Figure1Run(
        algorithm=algorithm,
        src2_last_half=sink.count("tcp2", SRC3_START, duration),
        src3_last_half=sink.count("tcp3", SRC3_START, duration),
        src3_first_435ms=sink.count("tcp3", SRC3_START, SRC3_START + 0.435),
        src2_total=sink.count("tcp2"),
        src3_total=sink.count("tcp3"),
        video_packets=sink.count("video"),
        series={"tcp2": sink.series("tcp2"), "tcp3": sink.series("tcp3")},
    )


def run_figure1(seed: int = 1, duration: float = DURATION) -> ExperimentResult:
    """Both variants, rendered as the Figure 1(b) comparison."""
    result = ExperimentResult(
        experiment="Figure 1(b)",
        description=(
            "Packets received by TCP sources 2 and 3; source 3 starts at "
            "500 ms. Priority VBR video makes the residual capacity "
            "fluctuate."
        ),
        headers=[
            "scheduler",
            "src2 pkts in [0.5s,1s]",
            "src3 pkts in [0.5s,1s]",
            "src3 pkts in first 435ms",
        ],
    )
    runs = {}
    for algorithm in ("WFQ", "SFQ"):
        run = run_figure1_variant(algorithm, seed=seed, duration=duration)
        runs[algorithm] = run
        result.add_row(
            algorithm, run.src2_last_half, run.src3_last_half, run.src3_first_435ms
        )
    result.note("paper: WFQ starves src3 (2 pkts in first 435 ms)")
    result.note("paper: SFQ delivers 189 vs 190 pkts in the last 500 ms")
    result.data["runs"] = runs

    # Figure 1(b)'s actual axes: sequence number received vs time.
    from repro.experiments.charts import ascii_chart, downsample

    charts = []
    for algorithm, run in runs.items():
        charts.append(
            ascii_chart(
                {
                    flow: downsample(pts)
                    for flow, pts in run.series.items()
                },
                title=f"Figure 1(b) [{algorithm}]: seqno received vs time (s)",
                x_label="time (s)",
                y_label="seqno",
                height=12,
            )
        )
    result.data["charts"] = charts
    return result
