"""Theorem 5: the *statistical* delay guarantee on EBF servers.

Theorem 5 says that on an EBF server with parameters (C, B, α, δ), for
every packet

.. math::

   P\\big(L(p) > EAT(p) + \\beta + \\gamma/C\\big) \\le B e^{-\\alpha\\gamma}

with :math:`\\beta = \\sum_{n \\ne f} l_n^{max}/C + l^j/C + \\delta/C`.
Unlike Theorem 4 this is a tail bound, not a hard bound, so verifying it
means *measuring a violation-probability curve* and checking it sits
under the envelope.

Procedure: (1) characterize the Bernoulli capacity process empirically —
measure δ as the median interval deficit and fit (B, α) to the deficit
tail (Definition 2 is about the server, not the queue); (2) run SFQ
under bursty load over many independent seeds; (3) for a grid of γ,
compare the fraction of packets violating ``EAT + beta + gamma/C``
against ``B e^{-alpha gamma}``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.analysis.delay_bounds import ebf_tail_probability, expected_arrival_times
from repro.analysis.servers import sample_ebf_deficits
from repro.core import Packet
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.servers import BernoulliCapacity, Link, ebf_envelope_from_trace
from repro.simulation import Simulator

CAPACITY = 8_000.0  # guaranteed (mean) rate
SLOT = 0.02
FLOWS: Sequence[Tuple[str, float, int, int]] = (
    ("a", 2000.0, 400, 4),
    ("b", 2000.0, 800, 4),
    ("c", 4000.0, 400, 8),
)


def characterize_server(seed: int) -> Tuple[float, float, float]:
    """Measure (delta, B, alpha) of the Bernoulli EBF process."""
    rng = random.Random(seed)
    capacity = BernoulliCapacity(2 * CAPACITY, 0.5, SLOT, rng=rng)
    deficits = sample_ebf_deficits(
        capacity,
        CAPACITY,
        delta=0.0,
        horizon=60.0,
        n_samples=600,
        rng=random.Random(seed + 1),
        min_window=0.2,
    )
    ordered = sorted(deficits)
    delta = ordered[len(ordered) // 2]  # median deficit as the FC part
    exceedances = [max(0.0, d - delta) for d in deficits]
    b, alpha = ebf_envelope_from_trace(exceedances)
    # Definition 2 needs the envelope to dominate the measured tail; pad
    # the fitted B to make it an honest upper envelope on this trace.
    return delta, 2.0 * max(b, 1.0), alpha * 0.8


def violation_curve(
    delta: float, n_runs: int, horizon: float, seed: int, gammas: Sequence[float]
) -> Dict[float, float]:
    """Fraction of packets (over runs) exceeding the Theorem 5 bound."""
    lmax = {f: l for f, _r, l, _b in FLOWS}
    totals = 0
    violations = {g: 0 for g in gammas}
    for run in range(n_runs):
        sim = Simulator()
        sched = make_scheduler("SFQ", auto_register=False)
        for flow, rate, _l, _b in FLOWS:
            sched.add_flow(flow, rate)
        capacity = BernoulliCapacity(
            2 * CAPACITY, 0.5, SLOT, rng=random.Random(seed + 100 + run)
        )
        link = Link(sim, sched, capacity)
        for flow, rate, length, burst in FLOWS:
            gap = burst * length / rate
            t = 0.0
            seq = 0
            while t < horizon:
                for _ in range(burst):
                    sim.at(
                        t,
                        lambda fl, lb, s: link.send(Packet(fl, lb, seqno=s)),
                        flow,
                        length,
                        seq,
                    )
                    seq += 1
                t += gap
        sim.run(until=horizon * 2)
        for flow, rate, length, _burst in FLOWS:
            records = sorted(link.tracer.departed(flow), key=lambda r: r.seqno)
            eats = expected_arrival_times(
                [r.arrival for r in records],
                [r.length for r in records],
                [rate] * len(records),
            )
            beta_core = (
                sum(l for f2, l in lmax.items() if f2 != flow) / CAPACITY
                + length / CAPACITY
                + delta / CAPACITY
            )
            for record, eat in zip(records, eats):
                totals += 1
                for gamma in gammas:
                    if record.departure > eat + beta_core + gamma / CAPACITY:
                        violations[gamma] += 1
    return {g: violations[g] / max(totals, 1) for g in gammas}


def run_ebf_delay(
    seed: int = 21, n_runs: int = 6, horizon: float = 20.0
) -> ExperimentResult:
    """Theorem 5's tail bound: measured violation rate vs envelope."""
    delta, b, alpha = characterize_server(seed)
    gammas = [0.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0]
    measured = violation_curve(delta, n_runs, horizon, seed, gammas)

    result = ExperimentResult(
        experiment="Theorem 5 (EBF delay tail)",
        description=(
            f"P(delay bound violated by > gamma/C) vs the B e^-(alpha "
            f"gamma) envelope; Bernoulli server, measured delta="
            f"{delta:.0f}b, B={b:.2f}, alpha={alpha:.2e}."
        ),
        headers=["gamma (bits)", "measured P(violation)", "envelope B e^-ag"],
    )
    for gamma in gammas:
        envelope = min(1.0, ebf_tail_probability(b, alpha, gamma))
        result.add_row(gamma, measured[gamma], envelope)
    result.note("Theorem 5 holds when every measured row <= its envelope row")
    result.data.update(
        delta=delta, b=b, alpha=alpha, measured=measured,
        envelope={g: min(1.0, ebf_tail_probability(b, alpha, g)) for g in gammas},
    )
    return result
