"""Stress test: Theorem 1 under self-similar traffic on a Markov link.

Theorem 1's proof makes *no assumption whatsoever* about traffic or
server behaviour — only that both flows are backlogged over the
interval. This experiment pushes that claim well outside the paper's
own workloads: heavy-tailed Pareto on-off sources (the self-similar
regime of mid-90s traffic measurement) competing with greedy bulk
traffic on a Gilbert-Elliott wireless-style link with total outages —
and SFQ's empirical H(f, m) must still sit below the Theorem 1 bound,
while WFQ's (fed the link's mean rate) does not.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from repro.analysis.fairness import empirical_fairness_measure, sfq_fairness_bound
from repro.core import Packet, Scheduler
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.servers import GilbertElliottCapacity, Link
from repro.simulation import RandomStreams, Simulator
from repro.traffic import ParetoOnOffSource

MEAN_RATE = 20_000.0
PACKET = 500
HORIZON = 120.0
RF, RM = 2.0, 1.0  # relative weights


def _run(make_scheduler: Callable[[], Scheduler], seed: int) -> Link:
    sim = Simulator()
    streams = RandomStreams(seed)
    sched = make_scheduler()
    sched.add_flow("f", RF)
    sched.add_flow("m", RM)
    capacity = GilbertElliottCapacity(
        good_rate=2 * MEAN_RATE,
        bad_rate=0.0,
        p_gb=0.05,
        p_bg=0.05,
        slot=0.02,
        rng=streams.stream("link"),
    )
    link = Link(sim, sched, capacity)

    # Flow f: greedy bulk; flow m: heavy-tailed Pareto on-off, plus a
    # greedy backlog from mid-run so the common-backlog window is long.
    n_bulk = int(HORIZON * MEAN_RATE / PACKET)
    sim.at(0.0, lambda: [link.send(Packet("f", PACKET, seqno=i)) for i in range(n_bulk)])
    src_m = ParetoOnOffSource(
        sim,
        "m",
        link.send,
        peak_rate=MEAN_RATE,
        packet_length=PACKET,
        rng=streams.stream("pareto"),
        alpha=1.4,
        min_on=0.05,
        min_off=0.05,
        stop_time=HORIZON / 3,
    )
    src_m.start()
    sim.at(
        HORIZON / 3,
        lambda: [
            link.send(Packet("m", PACKET, seqno=10_000 + i))
            for i in range(n_bulk // 2)
        ],
    )
    sim.run(until=HORIZON)
    return link


def run_stress(seed: int = 51) -> ExperimentResult:
    """Measure H(f, m) for SFQ and WFQ on the off-distribution workload."""
    bound = sfq_fairness_bound(PACKET, RF, PACKET, RM)
    measures: Dict[str, float] = {}
    for name, make in (
        ("SFQ", lambda: make_scheduler("SFQ", auto_register=False)),
        ("WFQ (assumed mean rate)", lambda: make_scheduler("WFQ", capacity=MEAN_RATE, auto_register=False)),
    ):
        link = _run(make, seed)
        measures[name] = empirical_fairness_measure(
            link.tracer, "f", "m", RF, RM, max_epochs=800
        )

    result = ExperimentResult(
        experiment="Stress: Theorem 1 off-distribution",
        description=(
            "Empirical H(f,m) (s) for a greedy flow vs a heavy-tailed "
            "Pareto flow on a Gilbert-Elliott link with outages; "
            f"Theorem 1 bound = {bound:.1f}s for SFQ on ANY server."
        ),
        headers=["scheduler", "empirical H (s)", "Theorem 1 bound (s)"],
    )
    for name, h in measures.items():
        result.add_row(name, h, bound if name == "SFQ" else "n/a")
    result.note("SFQ's bound is traffic- and server-agnostic; WFQ's is not")
    result.data.update(measures=measures, bound=bound)
    return result
