"""Generalized SFQ with per-packet rates (Section 2.3, eq. 36).

VBR video needs *variable* rate allocation: the paper generalizes SFQ by
letting each packet carry its own rate :math:`r_f^j` in the finish-tag
computation, and replaces the Σr ≤ C admission test with the
rate-function test Σ_n R_n(v) ≤ C over virtual time.

The experiment allocates a two-tier rate to a synthetic VBR flow —
I-frame packets get a high rate, B/P packets a low rate — sharing the
link with CBR audio flows, and verifies:

* the rate-function admission test passes (Section 2.3's capacity
  notion, checked from the actual assigned tags);
* Theorem 4's delay guarantee holds per packet with the *per-packet*
  EAT chain of eq. 37 (each packet's own rate in the chain);
* I-frame packets see tighter normalized service than the low-rate
  packets (the point of variable allocation).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.analysis.admission import rate_functions_admissible
from repro.analysis.delay_bounds import expected_arrival_times, sfq_delay_bound
from repro.core import Packet
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator

LINK = 40_000.0
VIDEO_PACKET = 400
AUDIO_PACKET = 320
# Rates cover each tier's demand (I-frames: 4 pkts / 0.1 s = 16 Kb/s;
# P/B frames: up to 2 pkts / 0.1 s = 8 Kb/s) so the EAT chain tracks
# arrivals — the premise of a rate *guarantee*.
HIGH_RATE = 24_000.0  # I-frame packets
LOW_RATE = 8_000.0  # P/B-frame packets
AUDIO_FLOWS = (("audio1", 4000.0), ("audio2", 4000.0))
HORIZON = 30.0
GOP = 6  # one high-rate frame out of GOP


def run_vbr_rates(seed: int = 41) -> ExperimentResult:
    """Run the two-tier per-packet-rate workload and its three checks."""
    rng = random.Random(seed)
    sim = Simulator()
    sched = make_scheduler("SFQ", auto_register=False)
    # The video flow's nominal weight is irrelevant once every packet
    # carries its own rate, but registration needs one.
    sched.add_flow("video", LOW_RATE)
    for flow, rate in AUDIO_FLOWS:
        sched.add_flow(flow, rate)
    link = Link(sim, sched, ConstantCapacity(LINK))

    # Video: frames every 1/10 s; I-frames are 4 packets at HIGH_RATE,
    # others 1-2 packets at LOW_RATE.
    video_plan: List[Tuple[float, int, float]] = []  # (time, length, rate)
    t, frame = 0.0, 0
    while t < HORIZON:
        if frame % GOP == 0:
            for _ in range(4):
                video_plan.append((t, VIDEO_PACKET, HIGH_RATE))
        else:
            for _ in range(rng.choice((1, 2))):
                video_plan.append((t, VIDEO_PACKET, LOW_RATE))
        t += 0.1
        frame += 1
    for seq, (at, length, rate) in enumerate(video_plan):
        sim.at(
            at,
            lambda s, lb, r: link.send(Packet("video", lb, seqno=s, rate=r)),
            seq,
            length,
            rate,
        )
    for flow, rate in AUDIO_FLOWS:
        gap = AUDIO_PACKET / rate
        for i in range(int(HORIZON / gap)):
            sim.at(
                i * gap,
                lambda fl, s: link.send(Packet(fl, AUDIO_PACKET, seqno=s)),
                flow,
                i,
            )
    sim.run(until=HORIZON * 1.5)

    # ------------------------------------------------------------------
    # Rate-function admission (Section 2.3): the peak allocation —
    # video at HIGH_RATE while an I-burst is in the system, audio at
    # their CBR rates — must fit in C at every virtual time.
    # ------------------------------------------------------------------
    admission = rate_functions_admissible(
        [
            [(0.0, 1.0, HIGH_RATE)],
            [(0.0, 1.0, AUDIO_FLOWS[0][1])],
            [(0.0, 1.0, AUDIO_FLOWS[1][1])],
        ],
        LINK,
    )

    # ------------------------------------------------------------------
    # Theorem 4 with per-packet rates.
    # ------------------------------------------------------------------
    records = sorted(link.tracer.departed("video"), key=lambda r: r.seqno)
    rates = [video_plan[r.seqno][2] for r in records]
    eats = expected_arrival_times(
        [r.arrival for r in records], [r.length for r in records], rates
    )
    sum_lmax_others = 2 * AUDIO_PACKET
    worst_slack = float("inf")
    delay_high: List[float] = []
    delay_low: List[float] = []
    for record, eat, rate in zip(records, eats, rates):
        bound = sfq_delay_bound(eat, sum_lmax_others, record.length, LINK, 0.0)
        worst_slack = min(worst_slack, bound - record.departure)
        (delay_high if rate == HIGH_RATE else delay_low).append(
            record.departure - eat
        )

    result = ExperimentResult(
        experiment="Generalized SFQ (eq. 36, per-packet rates)",
        description=(
            "A VBR flow whose I-frame packets carry a 24 Kb/s rate and "
            "P/B packets 8 Kb/s, sharing a 40 Kb/s link with CBR audio."
        ),
        headers=["check", "value"],
    )
    result.add_row("rate-function admission (sec 2.3)", admission)
    result.add_row("Theorem 4 worst slack, video (s)", worst_slack)
    result.add_row(
        "mean EAT-relative delay, I packets (ms)",
        1e3 * sum(delay_high) / max(len(delay_high), 1),
    )
    result.add_row(
        "mean EAT-relative delay, P/B packets (ms)",
        1e3 * sum(delay_low) / max(len(delay_low), 1),
    )
    result.note(
        "Theorem 4's bound uses each packet's own EAT chain; the delay "
        "guarantee is independent of which rate tier a packet bought — "
        "the bound's l/C term, not l/r (the SCFQ/WFQ coupling)."
    )
    result.data.update(
        admission=admission,
        worst_slack=worst_slack,
        mean_delay_high=sum(delay_high) / max(len(delay_high), 1),
        mean_delay_low=sum(delay_low) / max(len(delay_low), 1),
        n_high=len(delay_high),
        n_low=len(delay_low),
    )
    return result
