"""Deterministic complexity accounting (Sections 1.2, 2, 2.5).

Wall-clock micro-benchmarks (``benchmarks/test_scheduler_complexity.py``)
are noisy and machine-dependent; this experiment counts *algorithmic
work* instead, which is exact and reproducible:

* the fluid-GPS tracker exposes ``pieces_computed`` — how many
  piecewise-linear segments WFQ/FQS/WF²Q had to walk to maintain v(t).
  The paper: "this simulation is computationally expensive";
* SFQ/SCFQ maintain v(t) by reading one tag — zero extra work —
  which is the paper's whole efficiency argument;
* per-packet GPS work *grows with the number of backlogged flows*
  (every arrival can cross several fluid-departure breakpoints), while
  the self-clocked algorithms' per-packet tag work stays constant.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core import Packet
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator

CAPACITY = 1_000_000.0
PACKET = 800


def gps_work(n_flows: int, rounds: int = 8):
    """(amortized pieces/packet, worst pieces in one advance).

    Workload designed to expose the worst case: every flow bursts one
    packet simultaneously, then the system idles long enough that the
    *next* arrival's advance() must retire all Q fluid flows at once.
    """
    sim = Simulator()
    wfq = make_scheduler("WFQ", capacity=CAPACITY, auto_register=False)
    for i in range(n_flows):
        wfq.add_flow(f"f{i}", CAPACITY / n_flows)
    link = Link(sim, wfq, ConstantCapacity(CAPACITY))
    burst_span = n_flows * PACKET / CAPACITY
    for r in range(rounds):
        t = r * 20 * burst_span  # long gap: fluid fully drains
        for i in range(n_flows):
            sim.at(
                t,
                lambda fl, q: link.send(Packet(fl, PACKET, seqno=q)),
                f"f{i}",
                r,
            )
    sim.run()
    total_packets = n_flows * rounds
    return (
        (wfq.gps.pieces_computed + wfq.gps.retirements) / total_packets,
        wfq.gps.max_pieces_single_advance,
    )


def run_complexity(flow_counts: Sequence[int] = (4, 16, 64, 256)) -> ExperimentResult:
    """GPS work growth vs the self-clocked constant."""
    result = ExperimentResult(
        experiment="Complexity accounting (GPS vs self-clocking)",
        description=(
            "Fluid-GPS segments processed by WFQ's v(t) simulation vs "
            "SFQ's O(1) tag read. Amortized pieces/packet is O(1), but "
            "one advance() after an idle gap must retire every fluid "
            "flow: the worst single-operation cost grows linearly in Q "
            "— the latency spike the paper's efficiency critique "
            "targets. Deterministic counts, not wall time."
        ),
        headers=[
            "backlogged flows",
            "WFQ amortized pieces/pkt",
            "WFQ worst single advance",
            "SFQ v(t) work",
        ],
    )
    amortized: Dict[int, float] = {}
    worst: Dict[int, int] = {}
    for n_flows in flow_counts:
        amortized[n_flows], worst[n_flows] = gps_work(n_flows)
        result.add_row(n_flows, amortized[n_flows], worst[n_flows], "1 tag read")
    result.note(
        "both families also pay an O(log Q) priority-queue op per packet; "
        "the GPS pieces are WFQ's *extra* cost"
    )
    result.data["amortized"] = amortized
    result.data["worst"] = worst
    return result
