"""Experiment harness: result containers and ASCII table rendering.

Every experiment module exposes a ``run_*`` function returning a
:class:`ExperimentResult`; the benchmark suite calls it, asserts the
paper's qualitative claims, and prints the table/series so that
``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
evaluation outputs. EXPERIMENTS.md records paper-vs-measured values.

Results are losslessly JSON-serializable (:meth:`ExperimentResult.to_json`
/ :meth:`ExperimentResult.from_json`): the campaign runner's
content-addressed cache stores shard results on disk, and a cached
shard must be indistinguishable from a fresh one — including ``data``
payloads with tuple dict keys, tuple values, and dataclass instances.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: Sentinel keys used by the JSON codec; a plain dict containing one of
#: these as a key is itself escaped through the pair encoding.
_TUPLE_KEY = "__tuple__"
_DICT_KEY = "__dict__"
_DATACLASS_KEY = "__dataclass__"
_SENTINELS = frozenset({_TUPLE_KEY, _DICT_KEY, _DATACLASS_KEY})


@dataclass
class ExperimentResult:
    """One experiment's rendered output plus machine-readable data."""

    experiment: str
    description: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Catch shape bugs at construction instead of letting render()'s
        # zip() silently truncate cells (a header-less result with rows
        # used to render as blank lines).
        if self.rows and not self.headers:
            raise ValueError(
                f"result {self.experiment!r} has {len(self.rows)} rows but "
                "no header columns"
            )
        for i, row in enumerate(self.rows):
            if len(row) != len(self.headers):
                raise ValueError(
                    f"row {i} has {len(row)} cells, table has "
                    f"{len(self.headers)} columns"
                )

    def add_row(self, *values: Any) -> None:
        if not self.headers:
            raise ValueError(
                "cannot add a row to a result with no header columns"
            )
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        """ASCII rendering: title, table, notes."""
        cells = [[_fmt(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.experiment} ==", self.description, ""]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def to_payload(self) -> Dict[str, Any]:
        """Encode into a plain JSON-compatible dict (see :func:`encode_value`)."""
        return {
            "schema": "experiment-result/1",
            "experiment": self.experiment,
            "description": self.description,
            "headers": list(self.headers),
            "rows": [[encode_value(cell) for cell in row] for row in self.rows],
            "notes": list(self.notes),
            "data": encode_value(self.data),
        }

    def to_json(self) -> str:
        """Lossless JSON serialization (stable key order → stable bytes)."""
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ExperimentResult":
        schema = payload.get("schema")
        if schema != "experiment-result/1":
            raise ValueError(f"unknown ExperimentResult schema {schema!r}")
        return cls(
            experiment=payload["experiment"],
            description=payload["description"],
            headers=list(payload["headers"]),
            rows=[[decode_value(cell) for cell in row] for row in payload["rows"]],
            notes=list(payload["notes"]),
            data=decode_value(payload["data"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_payload(json.loads(text))

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def encode_value(value: Any) -> Any:
    """Encode a result cell/data value into JSON-compatible primitives.

    Handles everything experiments actually put in ``data``: scalars,
    lists, tuples (tagged so they decode back as tuples), dicts with
    non-string keys (int keys, tuple keys — encoded as an ordered pair
    list), and dataclass instances (tagged with their import path).
    Anything else raises ``TypeError`` so a new unserializable payload
    fails loudly in tests rather than silently corrupting the cache.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, float)):  # bool already handled above
        return value
    if isinstance(value, tuple):
        return {_TUPLE_KEY: [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        plain = all(isinstance(k, str) for k in value) and not (
            _SENTINELS & set(value)
        )
        if plain:
            return {k: encode_value(v) for k, v in value.items()}
        return {
            _DICT_KEY: [[encode_value(k), encode_value(v)] for k, v in value.items()]
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            _DATACLASS_KEY: f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    raise TypeError(
        f"cannot losslessly serialize {type(value).__name__} value {value!r}"
    )


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if _TUPLE_KEY in value:
            return tuple(decode_value(v) for v in value[_TUPLE_KEY])
        if _DICT_KEY in value:
            return {
                decode_value(k): decode_value(v) for k, v in value[_DICT_KEY]
            }
        if _DATACLASS_KEY in value:
            module_name, _, qualname = value[_DATACLASS_KEY].partition(":")
            obj: Any = importlib.import_module(module_name)
            for part in qualname.split("."):
                obj = getattr(obj, part)
            fields = {k: decode_value(v) for k, v in value["fields"].items()}
            return obj(**fields)
        return {k: decode_value(v) for k, v in value.items()}
    return value


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def comparison_row(
    label: str, paper_value: Optional[float], measured: float, unit: str = ""
) -> List[Any]:
    """A (label, paper, measured, ratio) row for EXPERIMENTS.md tables."""
    if paper_value in (None, 0):
        ratio = ""
    else:
        ratio = f"{measured / paper_value:.3f}"
    paper_cell = "" if paper_value is None else _fmt(paper_value) + unit
    return [label, paper_cell, _fmt(measured) + unit, ratio]


def geometric_sweep(start: float, stop: float, n: int) -> List[float]:
    """n geometrically spaced points from start to stop inclusive."""
    if n < 2:
        return [start]
    ratio = (stop / start) ** (1 / (n - 1))
    return [start * ratio**i for i in range(n)]
