"""Experiment harness: result containers and ASCII table rendering.

Every experiment module exposes a ``run_*`` function returning a
:class:`ExperimentResult`; the benchmark suite calls it, asserts the
paper's qualitative claims, and prints the table/series so that
``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
evaluation outputs. EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """One experiment's rendered output plus machine-readable data."""

    experiment: str
    description: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        """ASCII rendering: title, table, notes."""
        cells = [[_fmt(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.experiment} ==", self.description, ""]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def comparison_row(
    label: str, paper_value: Optional[float], measured: float, unit: str = ""
) -> List[Any]:
    """A (label, paper, measured, ratio) row for EXPERIMENTS.md tables."""
    if paper_value in (None, 0):
        ratio = ""
    else:
        ratio = f"{measured / paper_value:.3f}"
    paper_cell = "" if paper_value is None else _fmt(paper_value) + unit
    return [label, paper_cell, _fmt(measured) + unit, ratio]


def geometric_sweep(start: float, stop: float, n: int) -> List[float]:
    """n geometrically spaced points from start to stop inclusive."""
    if n < 2:
        return [start]
    ratio = (stop / start) ** (1 / (n - 1))
    return [start * ratio**i for i in range(n)]
