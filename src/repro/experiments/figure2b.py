"""Figure 2(b): average delay of low-throughput flows, WFQ vs SFQ.

The paper's setup: a 1 Mb/s link, 200-byte packets, 7 Poisson flows at
100 Kb/s (high-throughput) sharing with n ∈ [2, 10] Poisson flows at 32
Kb/s (low-throughput); 1000 s of simulated time. Figure 2(b) plots the
low-throughput flows' average delay against link utilization; the paper
reports the WFQ average being 53% higher than SFQ's at 80.81%
utilization.

The mechanism: WFQ serves in finish-tag order, postponing a packet as
long as the fluid system allows; SFQ serves in start-tag order,
scheduling packets at the earliest instant — which favors packets of
sparse (low-throughput) flows whose start tags trail the system virtual
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.stats import mean
from repro.core import Scheduler
from repro.core.registry import make_scheduler
from repro.core.packet import kbps, mbps
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link
from repro.simulation import RandomStreams, Simulator
from repro.traffic import PoissonSource

LINK = mbps(1)
PACKET = 200 * 8
HIGH_RATE = kbps(100)
LOW_RATE = kbps(32)
N_HIGH = 7


@dataclass
class Figure2bPoint:
    n_low: int
    utilization: float
    avg_delay_low: float
    avg_delay_high: float


def run_point(
    algorithm: str,
    n_low: int,
    duration: float = 1000.0,
    seed: int = 11,
) -> Figure2bPoint:
    """One (scheduler, n_low) cell of Figure 2(b)."""
    sim = Simulator()
    streams = RandomStreams(seed)
    if algorithm == "SFQ":
        sched: Scheduler = make_scheduler("SFQ", auto_register=False)
    elif algorithm == "WFQ":
        sched = make_scheduler("WFQ", capacity=LINK, auto_register=False)
    else:
        raise ValueError(f"algorithm must be SFQ or WFQ, got {algorithm!r}")

    high_flows = [f"high{i}" for i in range(N_HIGH)]
    low_flows = [f"low{i}" for i in range(n_low)]
    for flow in high_flows:
        sched.add_flow(flow, HIGH_RATE)
    for flow in low_flows:
        sched.add_flow(flow, LOW_RATE)

    link = Link(sim, sched, ConstantCapacity(LINK), name=f"fig2b-{algorithm}")
    for flow, rate in [(f, HIGH_RATE) for f in high_flows] + [
        (f, LOW_RATE) for f in low_flows
    ]:
        # One RNG stream per flow, shared across the WFQ and SFQ runs,
        # so both algorithms see the identical arrival process.
        source = PoissonSource(
            sim,
            flow,
            link.send,
            rate=rate,
            packet_length=PACKET,
            rng=streams.stream(f"poisson-{flow}"),
            stop_time=duration,
        )
        source.start()
    sim.run(until=duration * 1.02)  # small grace period to drain

    low_delays: List[float] = []
    for flow in low_flows:
        low_delays.extend(link.tracer.delays(flow))
    high_delays: List[float] = []
    for flow in high_flows:
        high_delays.extend(link.tracer.delays(flow))
    utilization = (N_HIGH * HIGH_RATE + n_low * LOW_RATE) / LINK
    return Figure2bPoint(
        n_low=n_low,
        utilization=utilization,
        avg_delay_low=mean(low_delays),
        avg_delay_high=mean(high_delays),
    )


def run_figure2b(
    n_low_values=range(2, 11),
    duration: float = 1000.0,
    seed: int = 11,
) -> ExperimentResult:
    """The full Figure 2(b) sweep (both schedulers, shared arrivals)."""
    result = ExperimentResult(
        experiment="Figure 2(b)",
        description=(
            "Average delay (ms) of 32 Kb/s Poisson flows vs utilization; "
            "7 x 100 Kb/s high-throughput flows share a 1 Mb/s link."
        ),
        headers=[
            "n_low",
            "utilization %",
            "WFQ avg delay",
            "SFQ avg delay",
            "WFQ/SFQ - 1 %",
        ],
    )
    points: Dict[str, List[Figure2bPoint]] = {"WFQ": [], "SFQ": []}
    for n_low in n_low_values:
        wfq_point = run_point("WFQ", n_low, duration, seed)
        sfq_point = run_point("SFQ", n_low, duration, seed)
        points["WFQ"].append(wfq_point)
        points["SFQ"].append(sfq_point)
        excess = wfq_point.avg_delay_low / sfq_point.avg_delay_low - 1
        result.add_row(
            n_low,
            wfq_point.utilization * 100,
            wfq_point.avg_delay_low * 1e3,
            sfq_point.avg_delay_low * 1e3,
            excess * 100,
        )
    result.note("paper: at 80.81% utilization WFQ's average delay is 53% higher")
    result.data["points"] = points

    from repro.experiments.charts import ascii_chart

    result.data["charts"] = [
        ascii_chart(
            {
                alg: [
                    (p.utilization * 100, p.avg_delay_low * 1e3)
                    for p in points[alg]
                ]
                for alg in ("WFQ", "SFQ")
            },
            title="Figure 2(b): avg delay of 32 Kb/s flows vs utilization",
            x_label="utilization %",
            y_label="ms",
            height=12,
        )
    ]
    return result
