"""Million-flow hierarchical link-sharing stress (the ROADMAP's scale item).

The paper's deployment story (§3–4) is hierarchical SFQ link-sharing
over very large flow populations — "every user of a large network holds
a flow". This experiment builds that use case at scale and measures
what the struct-of-arrays backend buys:

* a three-level link-sharing tree (root → departments → groups, every
  node SFQ on the selected backend);
* 10^3 → 10^6 CBR flows attached round-robin to the group leaves,
  offered at 1.2× link capacity (sustained overload, every leaf
  backlogged), generated as one vectorized fleet timeline
  (:func:`repro.traffic.batch.cbr_fleet_times`) and admitted through
  the engine's arrival-stream path — no per-packet timer heap work;
* continuous flow churn on a dedicated leaf: short-lived flows join
  (``attach_flow``), send, drain and detach
  (:meth:`~repro.core.hierarchical.HierarchicalScheduler.detach_flow`),
  recycling slab slots throughout the run.

Per point it reports wall-clock cost per serviced packet; the paper's
O(log Q) claim predicts this stays near-flat in the flow count (the
heap depth grows as log F, everything else is O(1)). A CRC32 digest
over the departure stream ``(flow, seqno, departure)`` pins the
schedule: the digest for a given (seed, flows, backend) must be
identical across runs, hosts, and ``--jobs`` fan-out — the
determinism regression test compares digests across campaign worker
counts.

Timing here is wall-clock by necessity (it measures the implementation,
not the simulated system); the DET002 exemptions are annotated inline.
"""

from __future__ import annotations

import time
import zlib
from typing import Dict, List, Sequence, Union

from repro.core.hierarchical import HierarchicalScheduler
from repro.core.packet import Packet
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity
from repro.servers.link import Link
from repro.simulation.engine import Simulator
from repro.simulation.random import RandomStreams
from repro.simulation.tracing import NullTracer
from repro.traffic.batch import FleetTimeline, cbr_fleet_times

CAPACITY = 1_000_000.0  # bits/s
PACKET_LENGTH = 1_000  # bits
OVERLOAD = 1.2  # offered load as a multiple of capacity
DEPARTMENTS = 2
GROUPS_PER_DEPT = 4

#: Default flow-count sweep (10^6 is opt-in via ``flows=[...]`` — it
#: completes, but takes minutes, which is stress-tier not smoke-tier).
DEFAULT_SWEEP = (1_000, 10_000, 100_000)


def _build_tree(backend: str) -> HierarchicalScheduler:
    """root → 2 departments → 4 groups each, plus a churn leaf."""
    factory = lambda: make_scheduler("SFQ", auto_register=False, backend=backend)
    hier = HierarchicalScheduler(
        root_scheduler=factory(), default_node_scheduler=factory
    )
    for d in range(DEPARTMENTS):
        hier.add_class("root", f"dept{d}", weight=1.0 + d)
        for g in range(GROUPS_PER_DEPT):
            hier.add_class(f"dept{d}", f"g{d}.{g}", weight=1.0 + g % 3)
    hier.add_class("dept0", "churn", weight=1.0)
    return hier


def _run_point(
    n_flows: int,
    seed: int,
    packets_target: int,
    churn_cycles: int,
    backend: str,
) -> Dict[str, object]:
    sim = Simulator()
    streams = RandomStreams(seed)
    hier = _build_tree(backend)
    # NullTracer: per-packet records at 10^6 packets would dominate both
    # memory and runtime; the CRC departure digest pins the schedule.
    link = Link(
        sim,
        hier,
        ConstantCapacity(CAPACITY),
        name=f"scale{n_flows}",
        tracer=NullTracer(),
    )

    # --- population: n_flows CBR flows round-robin over the group leaves
    leaves = [
        f"g{d}.{g}" for d in range(DEPARTMENTS) for g in range(GROUPS_PER_DEPT)
    ]
    for i in range(n_flows):
        hier.attach_flow(i, leaves[i % len(leaves)], weight=1.0)

    per_flow_rate = OVERLOAD * CAPACITY / n_flows
    packets_per_flow = max(1, packets_target // n_flows)
    times, flow_idx = cbr_fleet_times(
        n_flows, per_flow_rate, PACKET_LENGTH, packets_per_flow
    )
    timeline = FleetTimeline(link.send, times, flow_idx, PACKET_LENGTH)
    sim.attach_stream(timeline)

    # --- churn: short-lived flows cycling through the dedicated leaf.
    # Join times come from a seeded stream; each flow sends one packet
    # and detaches when it departs, recycling its slab slot.
    churn_rng = streams.stream("scale:churn")
    span = times[-1] - times[0] if len(times) else 1.0
    churn_times = sorted(
        float(times[0]) + churn_rng.random() * float(span)
        for _ in range(churn_cycles)
    )
    churn_stats = {"joined": 0, "detached": 0}

    def _join(k: int, t: float) -> None:
        fid = ("churn", k)
        hier.attach_flow(fid, "churn", weight=2.0)
        churn_stats["joined"] += 1
        link.send(Packet(fid, PACKET_LENGTH, seqno=0))

    def _on_departure(packet: Packet, now: float) -> None:
        flow = packet.flow
        if isinstance(flow, tuple):  # a churn flow finished its packet
            hier.detach_flow(flow)
            churn_stats["detached"] += 1
        digest["crc"] = zlib.crc32(
            f"{flow}:{packet.seqno}:{now:.12g};".encode(), digest["crc"]
        )

    digest = {"crc": 0}
    link.departure_hooks.append(_on_departure)
    for k, t in enumerate(churn_times):
        sim.call_at(t, _join, k, t)

    t0 = time.perf_counter()  # lint: disable=DET002  measures the implementation's wall cost, not simulated state
    sim.run()
    elapsed = time.perf_counter() - t0  # lint: disable=DET002  measures the implementation's wall cost, not simulated state

    served = link.packets_transmitted
    churn_leaf = hier.class_node("churn")
    leaf_sched = churn_leaf.scheduler
    slab_capacity = getattr(getattr(leaf_sched, "slab", None), "capacity", None)
    return {
        "flows": n_flows,
        "packets": served,
        "events": sim.events_processed,
        "elapsed_s": elapsed,
        "ns_per_packet": elapsed / served * 1e9 if served else 0.0,
        "digest": f"{digest['crc']:08x}",
        "churn_joined": churn_stats["joined"],
        "churn_detached": churn_stats["detached"],
        "churn_slab_capacity": slab_capacity,
        "backend": backend,
    }


def run_scale(
    seed: int = 0,
    flows: Union[int, Sequence[int], None] = None,
    packets_target: int = 50_000,
    churn_cycles: int = 400,
    backend: str = "array",
) -> ExperimentResult:
    """Hierarchical link-sharing at scale: per-packet cost vs flow count.

    Parameters
    ----------
    seed:
        Seed for the churn arrival stream (everything else is
        deterministic by construction).
    flows:
        One flow count or a sweep; default ``(10^3, 10^4, 10^5)``.
        Include ``1_000_000`` explicitly for the full stress point.
    packets_target:
        Total fleet packets per point (split evenly across flows, at
        least one each — so points above ``packets_target`` flows grow
        to one packet per flow).
    churn_cycles:
        Join/send/drain/detach cycles on the churn leaf per point.
    backend:
        Scheduler backend for every tree node (``"array"`` default;
        ``"object"`` measures the reference path).
    """
    if flows is None:
        sweep: List[int] = list(DEFAULT_SWEEP)
    elif isinstance(flows, int):
        sweep = [flows]
    else:
        sweep = [int(f) for f in flows]

    result = ExperimentResult(
        experiment="scale",
        description=(
            "Hierarchical SFQ link-sharing under 1.2x overload with flow "
            f"churn, {backend} backend: per-packet wall cost vs flow count"
        ),
        headers=[
            "flows", "packets", "events", "ns/packet", "churn", "digest"
        ],
    )
    points = []
    for n in sweep:
        point = _run_point(n, seed, packets_target, churn_cycles, backend)
        points.append(point)
        result.add_row(
            point["flows"],
            point["packets"],
            point["events"],
            round(float(point["ns_per_packet"]), 1),
            f"{point['churn_detached']}/{point['churn_joined']}",
            point["digest"],
        )
        assert point["churn_detached"] == point["churn_joined"], (
            "churn leak: a joined flow never drained/detached"
        )

    by_flows = {p["flows"]: p for p in points}
    lo, hi = min(by_flows), max(by_flows)
    if hi > lo:
        ratio = (
            float(by_flows[hi]["ns_per_packet"])
            / float(by_flows[lo]["ns_per_packet"])
        )
        result.note(
            f"per-packet cost ratio {hi:,} vs {lo:,} flows: {ratio:.2f}x "
            "(O(log F) predicts near-flat)"
        )
        result.data["flat_ratio"] = ratio
    slab_caps = [p["churn_slab_capacity"] for p in points]
    if all(c is not None for c in slab_caps):
        result.note(
            "churn leaf slab capacity stayed at "
            f"{max(int(c) for c in slab_caps if c is not None)} slot(s) across "
            f"{points[0]['churn_joined']} join/leave cycles (free-list recycling)"
        )
    result.data["points"] = points
    result.data["seed"] = seed
    result.data["backend"] = backend
    return result
