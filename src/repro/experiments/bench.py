"""Perf-regression microbenchmarks: ``python -m repro bench``.

Measures the three hot paths the flow-head-heap overhaul targets —
event dispatch, the end-to-end link pipeline, and per-packet scheduler
cost — for the optimized implementations *and* the frozen seed copies
kept under ``tests/reference/``, and writes the numbers (with speedup
ratios) to ``BENCH_engine.json`` and ``BENCH_schedulers.json``.

The committed JSON files are the repo's perf trajectory: CI runs this
module in ``--smoke`` mode on every PR so the bench code cannot rot, and
``scripts/bench_compare.py`` diffs a fresh full run against the
committed numbers and fails on a >30% regression.

All timings are min-of-``repeats`` wall-clock measurements
(:func:`time.perf_counter`) of fixed deterministic workloads, so the
numbers are as insensitive to scheduler jitter as a userspace benchmark
can be. They remain machine-dependent: compare ratios (speedups,
backlog-scaling ratios) across machines, not nanoseconds.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core import Packet
from repro.core.registry import make_scheduler, scheduler_spec
from repro.servers import ConstantCapacity, Link
from repro.simulation import NullTracer, Simulator, Tracer

__all__ = [
    "run_bench",
    "bench_engine",
    "bench_schedulers",
    "bench_scale",
    "bench_metrics_overhead",
]


# ----------------------------------------------------------------------
# Frozen seed implementations (tests/reference) — loaded lazily so the
# library itself never depends on the test tree, and gracefully absent
# in installed-package contexts (the bench then refuses to run, since
# seed-vs-optimized is its entire point).
# ----------------------------------------------------------------------
def _load_reference():
    try:
        from tests.reference import legacy_cores, legacy_engine
    except ImportError:
        root = Path(__file__).resolve().parents[3]
        if not (root / "tests" / "reference").is_dir():
            raise RuntimeError(
                "tests/reference/ (frozen seed implementations) not found; "
                "run the bench from a repo checkout"
            )
        sys.path.insert(0, str(root))
        from tests.reference import legacy_cores, legacy_engine
    return legacy_engine.LegacySimulator, {
        "SFQ": legacy_cores.LegacySFQ,
        "SCFQ": legacy_cores.LegacySCFQ,
        "VirtualClock": legacy_cores.LegacyVirtualClock,
    }


def _noop() -> None:
    return None


def _best_of(fn: Callable[[], float], repeats: int) -> float:
    return min(fn() for _ in range(max(1, repeats)))


# ----------------------------------------------------------------------
# Engine: event dispatch
# ----------------------------------------------------------------------
def _dispatch_seconds(sim, schedule_next, ops: int, pending: int) -> float:
    """Seconds to schedule+fire ``ops`` chained events over ``pending``
    ballast events.

    Each fired event schedules its successor, so the heap holds exactly
    ``pending + 1`` entries throughout — the steady-state shape of a
    simulation with ``pending`` armed timers.
    """
    for i in range(pending):
        sim.at(1e12 + i, _noop)
    remaining = [ops]

    def tick() -> None:
        n = remaining[0] - 1
        remaining[0] = n
        if n:
            schedule_next(sim.now + 1.0, tick)

    t0 = time.perf_counter()
    schedule_next(1.0, tick)
    sim.run(until=float(ops + 1))
    elapsed = time.perf_counter() - t0
    assert remaining[0] == 0, "dispatch bench did not drain its chain"
    return elapsed


def bench_dispatch(ops: int, repeats: int) -> Dict[str, dict]:
    """Seed-vs-optimized event dispatch cost at 16 and 4096 pending."""
    LegacySimulator, _ = _load_reference()
    out: Dict[str, dict] = {}
    for pending in (16, 4096):
        def seed_run() -> float:
            sim = LegacySimulator()
            return _dispatch_seconds(sim, sim.at, ops, pending)

        def fast_run() -> float:
            # Optimized configuration selects the calendar event queue
            # explicitly, mirroring how it opts into backend="array".
            sim = Simulator(event_queue="calendar")
            return _dispatch_seconds(sim, sim.call_at, ops, pending)

        seed = _best_of(seed_run, repeats) / ops
        fast = _best_of(fast_run, repeats) / ops
        out[f"pending={pending}"] = {
            "events": ops,
            "seed_ns_per_event": round(seed * 1e9, 1),
            "optimized_ns_per_event": round(fast * 1e9, 1),
            "speedup": round(seed / fast, 3),
        }
    return out


# ----------------------------------------------------------------------
# Engine: end-to-end SFQ link pipeline
# ----------------------------------------------------------------------
def _pipeline_seconds(sim_cls, sched_factory, tracer, packets_per_flow: int) -> float:
    """Seconds to push 8 flows x ``packets_per_flow`` packets through a
    saturated SFQ link (the whole stack: engine + scheduler + link)."""
    n_flows = 8
    sim = sim_cls()
    sched = sched_factory()
    for i in range(n_flows):
        sched.add_flow(f"f{i}", 1000.0)
    link = Link(sim, sched, ConstantCapacity(8000.0), tracer=tracer)
    for i in range(n_flows):
        flow = f"f{i}"
        for s in range(packets_per_flow):
            sim.at(s * 0.05, link.send, Packet(flow, 100, seqno=s))
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert link.packets_transmitted == n_flows * packets_per_flow
    return elapsed


def bench_pipeline(packets_per_flow: int, repeats: int) -> dict:
    """Seed-vs-optimized end-to-end SFQ link pipeline throughput."""
    LegacySimulator, legacy_cores = _load_reference()
    total = 8 * packets_per_flow

    def seed_run() -> float:
        # Seed configuration: seed engine, seed SFQ core, and the
        # always-on record-per-packet tracer the seed Link mandated.
        return _pipeline_seconds(
            LegacySimulator,
            lambda: legacy_cores["SFQ"](auto_register=False),
            Tracer("bench"),
            packets_per_flow,
        )

    def fast_run() -> float:
        # Optimized configuration with tracing disabled (the opt-in
        # zero-cost path): slab-backed SFQ + calendar event queue +
        # engine fast loop with busy-period timer elision.
        return _pipeline_seconds(
            lambda: Simulator(event_queue="calendar"),
            lambda: make_scheduler("SFQ", auto_register=False, backend="array"),
            NullTracer(),
            packets_per_flow,
        )

    seed = _best_of(seed_run, repeats)
    fast = _best_of(fast_run, repeats)
    return {
        "packets": total,
        "seed_pkts_per_sec": round(total / seed),
        "optimized_pkts_per_sec": round(total / fast),
        "speedup": round(seed / fast, 3),
    }


def bench_engine(smoke: bool = False, repeats: int = 5) -> dict:
    """The ``BENCH_engine.json`` payload: dispatch + pipeline families."""
    ops = 2_000 if smoke else 50_000
    per_flow = 50 if smoke else 1_000
    return {
        "benchmark": "engine",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "repeats": repeats,
        "dispatch": bench_dispatch(ops, repeats),
        "pipeline": bench_pipeline(per_flow, repeats),
    }


# ----------------------------------------------------------------------
# Schedulers: per-packet cost vs per-flow backlog depth
# ----------------------------------------------------------------------
_OPTIMIZED = {
    "SFQ": lambda: make_scheduler("SFQ", auto_register=False, backend="array"),
    "SCFQ": lambda: make_scheduler("SCFQ", auto_register=False, backend="array"),
    "VirtualClock": lambda: make_scheduler(
        "VirtualClock", auto_register=False, backend="array"
    ),
}


def _per_packet_seconds(factory, n_flows: int, backlog: int, cycles: int) -> float:
    """Seconds per dequeue+complete+enqueue cycle at a standing
    population of ``n_flows`` flows x ``backlog`` packets each."""
    sched = factory()
    for i in range(n_flows):
        sched.add_flow(f"f{i}", 1000.0 + i)
    for i in range(n_flows):
        flow = f"f{i}"
        for j in range(backlog):
            sched.enqueue(Packet(flow, 400 if j % 2 else 800, seqno=j), 0.0)
    seq = backlog
    now = 0.0
    t0 = time.perf_counter()
    for _ in range(cycles):
        now += 1e-3
        packet = sched.dequeue(now)
        sched.on_service_complete(packet, now)
        # Refill the flow just served: the population stays exactly
        # n_flows x backlog, so the heap shape is steady-state.
        sched.enqueue(Packet(packet.flow, 400, seqno=seq), now)
        seq += 1
    return time.perf_counter() - t0


def bench_schedulers(smoke: bool = False, repeats: int = 5) -> dict:
    """The ``BENCH_schedulers.json`` payload: per-packet cost vs backlog
    depth for SFQ/SCFQ/VirtualClock, plus the SFQ scaling curve."""
    _, legacy_cores = _load_reference()
    n_flows = 16
    cycles = 500 if smoke else 20_000
    per_packet: Dict[str, dict] = {}
    for name, fast_factory in _OPTIMIZED.items():
        legacy_factory = lambda lf=legacy_cores[name]: lf(auto_register=False)
        entry: Dict[str, object] = {}
        costs: Dict[str, Dict[int, float]] = {"seed": {}, "optimized": {}}
        for backlog in (4, 40):
            seed = _best_of(
                lambda b=backlog: _per_packet_seconds(legacy_factory, n_flows, b, cycles),
                repeats,
            ) / cycles
            fast = _best_of(
                lambda b=backlog: _per_packet_seconds(fast_factory, n_flows, b, cycles),
                repeats,
            ) / cycles
            costs["seed"][backlog] = seed
            costs["optimized"][backlog] = fast
            entry[f"backlog={backlog}"] = {
                "seed_ns_per_packet": round(seed * 1e9, 1),
                "optimized_ns_per_packet": round(fast * 1e9, 1),
                "speedup": round(seed / fast, 3),
            }
        # Cost growth when per-flow backlog grows 10x (flows fixed):
        # O(log F) stays ~1.0, O(log N) grows with log(total backlog).
        entry["seed_backlog_10x_ratio"] = round(
            costs["seed"][40] / costs["seed"][4], 3
        )
        entry["optimized_backlog_10x_ratio"] = round(
            costs["optimized"][40] / costs["optimized"][4], 3
        )
        per_packet[name] = entry

    # O(log F) vs O(log N) curve (REPORT.md): SFQ per-packet cost as the
    # per-flow backlog deepens with the flow count pinned at 16. The
    # deep end (512 packets/flow -> 8192 total) is where the seed's
    # global packet heap visibly pays log(N) while the flow-head heap
    # stays at log(F)=log(16).
    curve_backlogs = [2, 8, 32] if smoke else [2, 8, 32, 128, 512]
    curve_cycles = 500 if smoke else 20_000
    curve: List[dict] = []
    for backlog in curve_backlogs:
        seed = _best_of(
            lambda b=backlog: _per_packet_seconds(
                lambda: legacy_cores["SFQ"](auto_register=False), n_flows, b, curve_cycles
            ),
            repeats,
        ) / curve_cycles
        fast = _best_of(
            lambda b=backlog: _per_packet_seconds(
                _OPTIMIZED["SFQ"], n_flows, b, curve_cycles
            ),
            repeats,
        ) / curve_cycles
        curve.append(
            {
                "per_flow_backlog": backlog,
                "total_packets": n_flows * backlog,
                "seed_ns_per_packet": round(seed * 1e9, 1),
                "optimized_ns_per_packet": round(fast * 1e9, 1),
            }
        )
    # PIFO engines: the exact heap mode of SpPifoScheduler vs the O(k)
    # band scan, same standing population as the per-packet table. The
    # band scan's appeal is hardware realizability, not software speed —
    # but it must stay within a constant factor of the exact engine.
    pifo: Dict[str, dict] = {}
    for label, factory in (
        ("exact_heap", lambda: make_scheduler(
            "SFQ", bands=0, auto_register=False)),
        ("sp_pifo_bands=2", lambda: make_scheduler(
            "SFQ", bands=2, track_inversions=False, auto_register=False)),
        ("sp_pifo_bands=8", lambda: make_scheduler(
            "SFQ", bands=8, track_inversions=False, auto_register=False)),
        ("sp_pifo_bands=32", lambda: make_scheduler(
            "SFQ", bands=32, track_inversions=False, auto_register=False)),
    ):
        cost = _best_of(
            lambda f=factory: _per_packet_seconds(f, n_flows, 4, cycles),
            repeats,
        ) / cycles
        pifo[label] = {"optimized_ns_per_packet": round(cost * 1e9, 1)}

    per_flow = 50 if smoke else 1_000
    return {
        "benchmark": "schedulers",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "repeats": repeats,
        "flows": n_flows,
        "per_packet_cost": per_packet,
        "sfq_backlog_curve": curve,
        "pifo": pifo,
        "metrics_overhead": bench_metrics_overhead(per_flow, repeats),
    }


# ----------------------------------------------------------------------
# Scale: per-packet cost vs flow count (the BENCH_scale.json payload)
# ----------------------------------------------------------------------
#: Flow counts for the scale sweep; the middle point carries the
#: ``optimized_`` key prefix and is therefore the one
#: ``scripts/bench_compare.py`` gates (the 10^3/10^5 points exist to
#: demonstrate flatness, and their tails are noisier).
SCALE_FLOWS = (1_000, 10_000, 100_000)
SCALE_GATED_FLOWS = 10_000
SCALE_DISCIPLINES = ("SFQ", "SCFQ", "WFQ")


def _scale_cycle_seconds(name: str, n_flows: int, cycles: int) -> float:
    """Seconds for ``cycles`` dequeue+complete+enqueue rounds with
    ``n_flows`` flows standing at one queued packet each — the heap
    holds ``n_flows`` head entries, so per-cycle cost is the O(log F)
    the paper claims, measured directly."""
    kwargs = {}
    if scheduler_spec(name).needs_capacity:  # rate-proportional: need link rate
        kwargs["capacity"] = 1_000_000.0
    sched = make_scheduler(name, auto_register=False, backend="array", **kwargs)
    for i in range(n_flows):
        sched.add_flow(i, 1000.0 + (i % 64))
    for i in range(n_flows):
        sched.enqueue(Packet(i, 800, seqno=0), 0.0)
    seq = 1
    now = 0.0
    t0 = time.perf_counter()
    for _ in range(cycles):
        now += 1e-3
        packet = sched.dequeue(now)
        sched.on_service_complete(packet, now)
        sched.enqueue(Packet(packet.flow, 800, seqno=seq), now)
        seq += 1
    return time.perf_counter() - t0


def bench_scale(
    smoke: bool = False,
    repeats: int = 5,
    flows: Optional[List[int]] = None,
) -> dict:
    """The ``BENCH_scale.json`` payload.

    Two sections:

    * ``per_packet_cost`` — flat-scheduler per-packet cost vs flow count
      for SFQ/SCFQ/WFQ on the array backend, with the per-discipline
      ``flat_ratio`` (largest vs smallest sweep point; the O(log F)
      claim predicts <= ~1.5x across 10^3 -> 10^5).
    * ``hierarchical_stress`` — the ``scale`` experiment (link-sharing
      tree, 1.2x overload, flow churn, vectorized fleet arrivals),
      including its departure digest so re-baselining also re-verifies
      the schedule. Keys here deliberately avoid the ``optimized_``
      prefix: macro wall-clock is too noisy to gate; the regression
      gate rides on the ``SCALE_GATED_FLOWS`` micro point.
    """
    from repro.experiments.scale import run_scale

    sweep = list(flows) if flows else (
        [100, 1_000] if smoke else list(SCALE_FLOWS)
    )
    cycles = 500 if smoke else 20_000
    per_packet: Dict[str, dict] = {}
    for name in SCALE_DISCIPLINES:
        entry: Dict[str, object] = {}
        costs: Dict[int, float] = {}
        for n_flows in sweep:
            per_cycle = _best_of(
                lambda n=n_flows: _scale_cycle_seconds(name, n, cycles),
                repeats,
            ) / cycles
            costs[n_flows] = per_cycle
            ns = round(per_cycle * 1e9, 1)
            key = (
                "optimized_ns_per_packet"
                if n_flows == SCALE_GATED_FLOWS
                else "ns_per_packet"
            )
            entry[f"flows={n_flows}"] = {key: ns}
        lo, hi = min(costs), max(costs)
        if hi > lo:
            entry["flat_ratio"] = round(costs[hi] / costs[lo], 3)
        per_packet[name] = entry

    # Full mode extends the stress sweep to the 10^6-flow point (~45 s):
    # the committed JSON is the proof the paper's "a flow per user"
    # population actually completes, churn included.
    stress_sweep = list(flows) if flows else (
        [2_000] if smoke else list(SCALE_FLOWS) + [1_000_000]
    )
    stress = run_scale(flows=stress_sweep)
    stress_by_flows = {p["flows"]: p for p in stress.data["points"]}
    stress_ratio_135 = (
        round(
            float(stress_by_flows[100_000]["ns_per_packet"])
            / float(stress_by_flows[1_000]["ns_per_packet"]),
            3,
        )
        if {1_000, 100_000} <= set(stress_by_flows)
        else None
    )
    return {
        "benchmark": "scale",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "repeats": repeats,
        "flows": sweep,
        "cycles": cycles,
        "per_packet_cost": per_packet,
        "hierarchical_stress": {
            "points": [
                {
                    "flows": p["flows"],
                    "packets": p["packets"],
                    "events": p["events"],
                    "ns_per_packet": round(float(p["ns_per_packet"]), 1),
                    "digest": p["digest"],
                    "churn_cycles": p["churn_detached"],
                }
                for p in stress.data["points"]
            ],
            "flat_ratio": round(float(stress.data["flat_ratio"]), 3)
            if "flat_ratio" in stress.data else None,
            # The acceptance ratio: 10^5- vs 10^3-flow per-packet cost
            # (the 10^6 point is completion proof, not part of it).
            "flat_ratio_1e3_to_1e5": stress_ratio_135,
        },
    }


# ----------------------------------------------------------------------
# Metrics: telemetry cost, disabled and enabled
# ----------------------------------------------------------------------
def bench_metrics_overhead(packets_per_flow: int, repeats: int) -> dict:
    """Pipeline throughput with metrics off (NULL_METRICS guard — the
    default every experiment pays) vs inside a ``MetricsSession``.

    The disabled cost is the subsystem's standing tax on every
    simulation and must stay in the noise (<3%: the guard is one class
    attribute read per hook). The enabled figure is what
    ``--metrics`` / ``python -m repro metrics`` costs. Keys deliberately
    avoid the ``optimized_*`` prefix: these are informational, not gated
    by ``scripts/bench_compare.py``.
    """
    from repro.metrics import MetricsSession

    total = 8 * packets_per_flow

    def run_off() -> float:
        return _pipeline_seconds(
            Simulator,
            lambda: make_scheduler("SFQ", auto_register=False),
            NullTracer(),
            packets_per_flow,
        )

    def run_on() -> float:
        with MetricsSession():
            return _pipeline_seconds(
                Simulator,
                lambda: make_scheduler("SFQ", auto_register=False),
                NullTracer(),
                packets_per_flow,
            )

    off = _best_of(run_off, repeats)
    on = _best_of(run_on, repeats)
    return {
        "packets": total,
        "metrics_off_pkts_per_sec": round(total / off),
        "metrics_on_pkts_per_sec": round(total / on),
        "enabled_overhead_pct": round((on - off) / off * 100.0, 1),
    }


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def profile_pipeline(
    top_n: int = 25,
    output_dir: str = "results/profile",
    packets_per_flow: int = 1_000,
) -> Path:
    """cProfile the optimized pipeline section; dump + print the top-N.

    The observability hook behind ``python -m repro bench --profile N``:
    runs the same workload as :func:`bench_pipeline`'s optimized
    configuration under :mod:`cProfile`, writes the raw stats
    (``pipeline.pstats``) and a ``tottime``-sorted top-N listing
    (``pipeline_top.txt``) under ``output_dir``, and prints the listing.
    Profiled numbers are for *relative* hot-spot ranking only — the
    tracer overhead makes them slower than the bench's timings.
    """
    import cProfile
    import pstats

    out_dir = Path(output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    _pipeline_seconds(
        lambda: Simulator(event_queue="calendar"),
        lambda: make_scheduler("SFQ", auto_register=False, backend="array"),
        NullTracer(),
        packets_per_flow,
    )
    profiler.disable()
    stats_path = out_dir / "pipeline.pstats"
    profiler.dump_stats(str(stats_path))
    text_path = out_dir / "pipeline_top.txt"
    with open(text_path, "w") as fh:
        stats = pstats.Stats(profiler, stream=fh)
        stats.sort_stats("tottime").print_stats(top_n)
    sys.stdout.write(text_path.read_text())
    print(f"wrote {stats_path}")
    print(f"wrote {text_path}")
    return stats_path


def run_bench(
    smoke: bool = False,
    output_dir: Optional[str] = None,
    repeats: int = 5,
    flows: Optional[List[int]] = None,
) -> Dict[str, dict]:
    """Run all benchmark families; write ``BENCH_*.json``; return them.

    ``flows`` overrides the flow-count sweep of the scale family
    (``python -m repro bench --flows 1000 10000``); the engine and
    scheduler families ignore it.
    """
    out_dir = Path(output_dir) if output_dir is not None else Path.cwd()
    out_dir.mkdir(parents=True, exist_ok=True)
    results = {
        "BENCH_engine.json": bench_engine(smoke=smoke, repeats=repeats),
        "BENCH_schedulers.json": bench_schedulers(smoke=smoke, repeats=repeats),
        "BENCH_scale.json": bench_scale(smoke=smoke, repeats=repeats, flows=flows),
    }
    for filename, payload in results.items():
        path = out_dir / filename
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    return results
