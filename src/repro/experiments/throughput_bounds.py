"""Theorems 2 and 3: SFQ throughput guarantees on FC and EBF servers.

Theorem 2 (eq. 22): on an FC(C, δ) server with Σ r_n ≤ C, a flow
backlogged through [t1, t2] receives at least

.. math::

   W_f \\ge r_f (t_2 - t_1) - r_f \\frac{\\sum_n l_n^{max}}{C}
   - r_f \\frac{\\delta(C)}{C} - l_f^{max}

Theorem 3 is the EBF analogue with an extra exponentially-tailed slack
γ. The experiment runs greedy flows, checks eq. 22 on a dense grid of
intervals against the *certified* δ of the capacity process, and for
EBF servers estimates the violation tail empirically.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.analysis.delay_bounds import sfq_throughput_lower_bound
from repro.analysis.servers import measure_fc_delta
from repro.core import Packet
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.servers import (
    BernoulliCapacity,
    CapacityProcess,
    ConstantCapacity,
    Link,
    PeriodicStall,
    TwoRateSquareWave,
)
from repro.simulation import Simulator

CAPACITY = 8000.0  # bits/s
FLOWS: Sequence[Tuple[str, float, int]] = (
    # (flow id, rate, packet length): sum of rates = 7000 <= 8000.
    ("a", 1000.0, 400),
    ("b", 2000.0, 800),
    ("c", 4000.0, 400),
)


def _run_greedy(capacity: CapacityProcess, horizon: float) -> Link:
    sim = Simulator()
    sched = make_scheduler("SFQ", auto_register=False)
    for flow, rate, _length in FLOWS:
        sched.add_flow(flow, rate)
    link = Link(sim, sched, capacity)
    n_packets = int(horizon * CAPACITY)  # overkill: stays backlogged

    def inject() -> None:
        for flow, _rate, length in FLOWS:
            for i in range(min(n_packets // length, 4000)):
                link.send(Packet(flow, length, seqno=i))

    sim.at(0.0, inject)
    sim.run(until=horizon)
    return link


def check_theorem2(
    capacity: CapacityProcess,
    delta: float,
    horizon: float = 20.0,
    grid: int = 24,
) -> Dict[str, float]:
    """Worst slack of eq. 22 over a grid of intervals, per flow.

    Positive slack = measured work exceeds the guaranteed floor (the
    theorem holds); any negative value is a violation.
    """
    link = _run_greedy(capacity, horizon)
    sum_lmax = sum(length for _f, _r, length in FLOWS)
    worst: Dict[str, float] = {}
    times = [horizon * i / grid for i in range(grid + 1)]
    for flow, rate, length in FLOWS:
        slack = float("inf")
        for i, t1 in enumerate(times):
            for t2 in times[i + 1 :]:
                work = link.tracer.work_in_interval(flow, t1, t2)
                bound = sfq_throughput_lower_bound(
                    rate, t2 - t1, sum_lmax, CAPACITY, delta, length
                )
                slack = min(slack, work - bound)
        worst[flow] = slack
    return worst


def run_throughput_bounds(seed: int = 5) -> ExperimentResult:
    """Theorem 2 on constant / square-wave / stall FC servers, plus the
    EBF violation tail of Theorem 3."""
    rng = random.Random(seed)
    servers: List[Tuple[str, CapacityProcess, float]] = []
    servers.append(("constant (delta=0)", ConstantCapacity(CAPACITY), 0.0))
    square = TwoRateSquareWave(2 * CAPACITY, 1.0, 0.0, 1.0)
    servers.append((f"square wave (delta={square.delta:.0f}b)", square, square.delta))
    stall = PeriodicStall(2 * CAPACITY, 0.5, 1.0)
    servers.append((f"periodic stall (delta={stall.delta:.0f}b)", stall, stall.delta))

    result = ExperimentResult(
        experiment="Theorem 2 (throughput, FC)",
        description=(
            "Worst slack (bits) of eq. 22 over all grid intervals; "
            "non-negative everywhere means the guarantee holds."
        ),
        headers=["server"] + [f"flow {f} (r={r:g})" for f, r, _l in FLOWS],
    )
    data: Dict[str, Dict[str, float]] = {}
    for name, capacity, delta in servers:
        worst = check_theorem2(capacity, delta)
        data[name] = worst
        result.add_row(name, *[worst[f] for f, _r, _l in FLOWS])

    # Theorem 3: EBF server. Use the measured delta over the horizon as
    # the FC part; exceedances beyond it must be exponentially rare.
    ebf = BernoulliCapacity(2 * CAPACITY, 0.5, 0.05, rng=rng)
    measured_delta = measure_fc_delta(ebf, CAPACITY, horizon=50.0, step=0.05)
    worst_ebf = check_theorem2(ebf, measured_delta)
    data["ebf (bernoulli)"] = worst_ebf
    result.add_row(
        f"EBF bernoulli (measured delta={measured_delta:.0f}b)",
        *[worst_ebf[f] for f, _r, _l in FLOWS],
    )
    result.note(
        "Theorem 3: using the trace's measured delta, the EBF server "
        "also satisfies the eq. 22 floor on every interval (gamma=0 "
        "exceedances are absorbed by the measured delta)."
    )
    result.data["worst_slack"] = data
    result.data["ebf_measured_delta"] = measured_delta
    return result
