"""SP-PIFO fidelity: how many strict-priority bands does SFQ need?

A true PIFO admits to an arbitrary rank position; SP-PIFO (Alcoz et
al., NSDI 2019) approximates it with ``k`` strict-priority FIFO bands
whose admission bounds adapt online (push-up on admission, push-down on
underflow).  The approximation serves some packets out of rank order —
*inversions* — and every inversion transfers a little service between
flows.  This experiment quantifies that loss for the paper's SFQ rank
function:

* **inversion rate** — fraction of dequeues whose packet had a strictly
  larger start tag than some packet still queued (measured against the
  exact rank order SP-PIFO itself maintains as a shadow heap);
* **unpifoness** — the magnitude-weighted variant (mean positive rank
  gap per dequeue, Alcoz et al.): the boolean rate saturates once a
  single small-rank packet is stranded, the gap does not;
* **per-flow throughput error** — mean relative deviation of each
  flow's cumulative ``bits_served`` from the exact-SFQ allocation,
  sampled at every burst end (the instants where the weighted
  allocation of Theorem 1 is actually contended).  This is the metric
  that matters for the paper: a FIFO scores *low* on unpifoness (it
  rarely strands the oldest packet for long) while failing the
  weighted allocation completely; banding inverts that trade.

The workload is adversarial for a FIFO but fair to SP-PIFO: all flows
arrive at the *same* packet rate with weights spread 1:8, so the SFQ
start tags diverge hard from arrival order (a light flow's tags race
ahead at 8x the rate of a heavy flow's), and bursts alternate with
drain gaps so the band bounds can track the tag drift.  Both sides see
byte-identical arrivals on an identical direct-drive constant-rate
link, so every divergence is attributable to banding.  ``bands=0`` runs
the engine's exact (heap) mode and must show zero error — the
degenerate case the unit tests pin down.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.core import Packet, Scheduler
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult

#: Link rate for the direct drive (bits/second).
CAPACITY = 1_000_000.0
#: Flow weights: a 1:8 spread so low-weight flows are the fairness
#: canaries (inversions mostly steal service for them).  Arrival rates
#: are deliberately *equal* across flows — were they weight-
#: proportional, every flow's tags would advance at the same
#: bits/weight rate and rank order would collapse onto arrival order,
#: making banding (and the whole experiment) a no-op.
WEIGHTS = (1.0, 1.0, 2.0, 2.0, 4.0, 4.0, 8.0, 8.0)
#: Aggregate overload factor *during a burst* — high enough that even
#: the heaviest flow (8/30 of the link) stays backlogged on its equal
#: 1/8 arrival share, so served bits track the scheduler's allocation.
OVERLOAD = 2.5
#: Burst/period of the on-off cycle (seconds).  The gap is sized so the
#: link fully drains between bursts (OVERLOAD * BURST < PERIOD):
#: sustained overload would strand the SP-PIFO cold-start packets in
#: the bottom band forever (the bound ladder only sweeps upward),
#: saturating the inversion metric at ~1 for every k.  Periodic drains
#: — the regime SP-PIFO itself is evaluated in — keep the backlog
#: honest while still forcing rank contention.
BURST = 0.3
PERIOD = 0.8


def _arrival_schedule(
    seed: int, horizon: float
) -> List[Tuple[float, Hashable, int]]:
    """Deterministic per-flow arrival list, merged and time-sorted.

    On-off cycles: for ``BURST`` seconds out of every ``PERIOD``, each
    flow offers an equal ``OVERLOAD/len(WEIGHTS)`` share of the link in
    jittered packets of mixed size; the jitter and sizes come from one
    seeded stream so every scheduler under test replays the same tape.
    """
    rng = random.Random(seed)
    cycles = int(horizon / PERIOD)
    rate = OVERLOAD * CAPACITY / len(WEIGHTS)
    arrivals: List[Tuple[float, Hashable, int]] = []
    for i in range(len(WEIGHTS)):
        for cycle in range(cycles):
            t = cycle * PERIOD
            end = t + BURST
            while t < end:
                length = rng.choice((400, 800, 1600))
                arrivals.append((t, f"f{i}", length))
                t += (length / rate) * (0.5 + rng.random())
    arrivals.sort(key=lambda a: (a[0], a[1]))
    return arrivals


def _burst_ends(horizon: float) -> List[float]:
    """The sampling instants: the end of each overload burst."""
    return [c * PERIOD + BURST for c in range(int(horizon / PERIOD))]


def _drive(
    sched: Scheduler,
    arrivals: Sequence[Tuple[float, Hashable, int]],
    horizon: float,
) -> List[Dict[Hashable, int]]:
    """Serve ``arrivals`` on a constant-rate link until ``horizon``.

    Returns per-flow cumulative bits served, snapshotted at every burst
    end.  The loop mirrors ``servers.Link``'s dequeue/complete cycle
    without the event engine, so runs are exact replays: same arrival
    tape + same scheduler decisions -> same tape of departures.
    """
    for i, weight in enumerate(WEIGHTS):
        sched.add_flow(f"f{i}", weight)
    seqnos: Dict[Hashable, int] = {}
    samples = _burst_ends(horizon)
    snapshots: List[Dict[Hashable, int]] = []
    idx = 0
    now = 0.0
    n = len(arrivals)

    def admit(upto: float) -> None:
        nonlocal idx
        while idx < n and arrivals[idx][0] <= upto:
            t, flow, length = arrivals[idx]
            seqno = seqnos.get(flow, 0)
            seqnos[flow] = seqno + 1
            sched.enqueue(Packet(flow, length, seqno=seqno), t)
            idx += 1

    def snapshot_through(upto: float) -> None:
        while len(snapshots) < len(samples) and samples[len(snapshots)] <= upto:
            snapshots.append(
                {
                    f"f{i}": sched.flows[f"f{i}"].bits_served
                    for i in range(len(WEIGHTS))
                }
            )

    while now < horizon:
        admit(now)
        packet = sched.dequeue(now)
        if packet is None:
            if idx >= n:
                break
            snapshot_through(arrivals[idx][0])
            now = arrivals[idx][0]
            continue
        now += packet.length / CAPACITY
        snapshot_through(now)
        admit(now)
        sched.on_service_complete(packet, now)
    snapshot_through(horizon)
    return snapshots


def _mean_abs_error(
    served: List[Dict[Hashable, int]], exact: List[Dict[Hashable, int]]
) -> float:
    """Mean relative per-flow deviation from the exact allocation,
    averaged over every (burst-end, flow) sample."""
    errors = [
        abs(s[flow] - bits) / bits
        for s, e in zip(served, exact)
        for flow, bits in e.items()
        if bits > 0
    ]
    return sum(errors) / len(errors) if errors else 0.0


def run_pifo_fidelity(
    bands: Sequence[int] = (1, 2, 4, 8, 16, 32),
    seed: int = 1,
    horizon: float = 4.0,
) -> ExperimentResult:
    """Bands-vs-fidelity curve for SP-PIFO over the SFQ rank function."""
    arrivals = _arrival_schedule(seed, horizon)
    exact = _drive(make_scheduler("SFQ"), arrivals, horizon)

    result = ExperimentResult(
        experiment="PIFO fidelity (SP-PIFO band sweep)",
        description=(
            "SP-PIFO approximation of SFQ with k strict-priority bands: "
            "rank-inversion rate and mean per-flow throughput error vs "
            "the exact PIFO, identical arrival tape "
            f"({len(arrivals)} packets, {OVERLOAD}x burst overload, "
            "equal arrival rates, weights 1:8). More bands -> fewer "
            "inversions -> Theorem 1's allocation recovered."
        ),
        headers=[
            "bands k",
            "inversion rate",
            "unpifoness/pkt (tag units)",
            "mean per-flow throughput error",
            "dequeues",
        ],
    )
    curve: Dict[int, Dict[str, float]] = {}
    for k in bands:
        sched = make_scheduler("SFQ", bands=k, track_inversions=True)
        served = _drive(sched, arrivals, horizon)
        error = _mean_abs_error(served, exact)
        per_pkt = sched.unpifoness / sched.dequeues if sched.dequeues else 0.0
        curve[k] = {
            "inversion_rate": sched.inversion_rate,
            "unpifoness_per_packet": per_pkt,
            "throughput_error": error,
            "inversions": float(sched.inversions),
            "dequeues": float(sched.dequeues),
        }
        result.add_row(k, sched.inversion_rate, per_pkt, error, sched.dequeues)
    errors = [curve[k]["throughput_error"] for k in bands]
    if list(bands) == sorted(bands) and len(bands) >= 2:
        # The headline claim: banding recovers the weighted allocation —
        # the k=1 FIFO must be the worst point on the error curve.
        assert errors[-1] < errors[0], (errors[0], errors[-1])
    result.note(
        "k=1 is a plain FIFO (every dequeue can invert); the shadow-heap "
        "inversion accounting is exact, not sampled"
    )
    result.note(
        "unpifoness shrinks with k but stays above the FIFO's — strict "
        "bands reorder locally to buy the globally-correct weighted "
        "shares the throughput-error column shows"
    )
    result.note("bands=0 selects the engine's exact heap mode (error 0)")
    result.data["bands"] = list(bands)
    result.data["curve"] = curve
    result.data["exact_bits_served"] = {
        str(flow): bits for flow, bits in exact[-1].items()
    } if exact else {}
    return result
