"""Parallel campaign runner: experiment fan-out with result caching.

The paper's evaluation is a set of *independent* experiment invocations
(experiment × parameter-override × seed). This module shards such a
campaign across a ``multiprocessing`` pool of worker processes and
merges the per-shard :class:`ExperimentResult`\\ s into per-experiment
summary tables. Design goals, in order:

**Determinism.** Every shard derives its RNG seed from a stable hash of
its shard key via :func:`repro.simulation.random.derive_seed`, so a
shard's output is a pure function of ``(experiment, params, seed slot,
base seed)`` — never of worker count, completion order, or process
identity. ``--jobs 4`` and ``--jobs 1`` produce bit-identical summary
tables.

**Incrementality.** Results are cached content-addressed on disk under
``<results>/.cache/<sha256>.json`` where the key hashes the experiment
name, a digest of the ``repro`` source tree, the canonical parameters,
and the effective seed. Re-running a campaign recomputes only shards
whose inputs changed; editing any source file invalidates everything
(coarse but sound). Cached shards round-trip through
:meth:`ExperimentResult.to_json`, so the aggregation step cannot tell
cached and fresh shards apart.

**Fault isolation.** A shard that raises is reported as failed in the
summary; a shard whose worker process dies is retried a bounded number
of times on a fresh worker; a shard that exceeds the per-shard timeout
has its worker terminated and is marked failed. None of these abort the
other shards.

CLI: ``python -m repro campaign --jobs 4 --seeds 5 --only table1,faults``.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue as queue_module
import signal
import threading
import time
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments import (
    ACCEPTS_SEED,
    REGISTRY,
    resolve_target,
)
from repro.experiments.harness import ExperimentResult, encode_value
from repro.simulation.random import derive_seed

#: Parameter grids sharded per experiment: the ``faults`` scenario grid
#: (one shard per outage algorithm plus the churn audit) fans out across
#: workers; concatenating the shards in grid order reproduces the
#: monolithic ``run_fault_tolerance`` table and notes.
PARAM_GRIDS: Dict[str, List[Dict[str, Any]]] = {
    "faults": [
        {"algorithms": ("SFQ",), "include_churn": False},
        {"algorithms": ("WFQ",), "include_churn": False},
        {"algorithms": (), "include_churn": True},
    ],
}

#: Bounded retry for shards whose worker *process* dies (not for
#: in-shard exceptions, which are deterministic and reported directly).
DEFAULT_RETRIES = 1

#: Crash-retry backoff shape: first retry waits ~RETRY_BACKOFF_BASE
#: seconds, doubling per attempt up to RETRY_BACKOFF_CAP.
RETRY_BACKOFF_BASE = 0.25
RETRY_BACKOFF_CAP = 5.0


@dataclass(frozen=True)
class Shard:
    """One unit of campaign work: experiment × params × seed slot."""

    experiment: str
    target: str  # "module:function"
    params: Tuple[Tuple[str, Any], ...] = ()
    seed_slot: int = 0
    seed: Optional[int] = None  # effective seed kwarg (None = omit)

    @property
    def kwargs(self) -> Dict[str, Any]:
        kwargs = dict(self.params)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs

    def token(self) -> str:
        """Canonical string key (stable across processes and runs)."""
        return json.dumps(
            {
                "experiment": self.experiment,
                "params": encode_value(dict(self.params)),
                "seed_slot": self.seed_slot,
                "seed": self.seed,
            },
            sort_keys=True,
        )

    def describe(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.params)
        label = f"{self.experiment}[{params}]" if params else self.experiment
        if self.seed is not None:
            label += f" seed={self.seed}"
        return label


@dataclass
class ShardOutcome:
    """What happened to one shard."""

    shard: Shard
    status: str  # "ok" | "failed" | "timeout"
    result: Optional[ExperimentResult] = None
    error: str = ""
    elapsed: float = 0.0
    attempts: int = 1
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class CampaignResult:
    """All shard outcomes plus the aggregated per-experiment summaries."""

    outcomes: List[ShardOutcome]
    summaries: "OrderedDict[str, ExperimentResult]"
    seeds: int
    wall_s: float = 0.0
    stats: Dict[str, Any] = field(default_factory=dict)

    def render_stats(self) -> str:
        s = self.stats
        return (
            f"campaign: {s['shards']} shards ({s['ok']} ok, "
            f"{s['failed']} failed), {s['cached']} served from cache, "
            f"{self.wall_s:.2f}s wall"
        )

    @property
    def failures(self) -> List[ShardOutcome]:
        return [o for o in self.outcomes if not o.ok]


# --------------------------------------------------------------------------
# Shard expansion and seed derivation


def retry_backoff(
    shard: Shard,
    attempt: int,
    base: float = RETRY_BACKOFF_BASE,
    cap: float = RETRY_BACKOFF_CAP,
) -> float:
    """Delay (seconds) before re-dispatching a crashed shard.

    Exponential in ``attempt`` (the number of attempts already made,
    >= 1), capped, with +/-25% jitter — but the jitter is *derived*
    from the shard token and attempt number through
    :func:`derive_seed`, not drawn from a live RNG: retry timing, like
    everything else in a campaign, is a pure function of its inputs.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    expo = min(cap, base * (2 ** (attempt - 1)))
    unit = (derive_seed("retry-backoff", shard.token(), attempt) % 1024) / 1024.0
    return expo * (0.75 + 0.5 * unit)


def derive_shard_seed(
    experiment: str,
    params: Tuple[Tuple[str, Any], ...],
    seed_slot: int,
    base_seed: int,
) -> int:
    """The deterministic per-shard seed (see module docstring)."""
    params_token = json.dumps(encode_value(dict(params)), sort_keys=True)
    return derive_seed("campaign", base_seed, experiment, params_token, seed_slot)


def expand_campaign(
    names: Sequence[str],
    seeds: int = 1,
    base_seed: Optional[int] = 0,
    derive_seeds: bool = True,
    grids: Optional[Mapping[str, List[Dict[str, Any]]]] = None,
    targets: Optional[Mapping[str, str]] = None,
    accepts_seed: Optional[frozenset] = None,
) -> List[Shard]:
    """Expand experiment names into the ordered list of shards.

    Seed-accepting experiments fan out over ``seeds`` slots; the rest
    are deterministic and run once per parameter set. With
    ``derive_seeds=False`` (the legacy ``run all`` path) the seed is
    ``base_seed + slot`` passed through directly — or omitted entirely
    when ``base_seed`` is None, preserving each experiment's default.
    """
    if grids is None:
        grids = PARAM_GRIDS
    registry: Dict[str, str] = dict(REGISTRY)
    if targets:
        registry.update(targets)
    if accepts_seed is None:
        accepts_seed = ACCEPTS_SEED
    shards: List[Shard] = []
    for name in names:
        if name not in registry:
            raise KeyError(f"unknown experiment {name!r}")
        target = registry[name]
        takes_seed = name in accepts_seed
        slots = range(seeds if takes_seed else 1)
        for overrides in grids.get(name, [{}]):
            params = tuple(sorted(overrides.items()))
            for slot in slots:
                if not takes_seed:
                    seed: Optional[int] = None
                elif derive_seeds:
                    seed = derive_shard_seed(name, params, slot, base_seed)
                elif base_seed is None:
                    seed = None
                else:
                    seed = base_seed + slot
                shards.append(Shard(name, target, params, slot, seed))
    return shards


# --------------------------------------------------------------------------
# Content-addressed result cache


def repro_source_digest(root: Optional[Path] = None) -> str:
    """SHA-256 over every ``repro`` source file (path + content).

    Part of every cache key: editing any source file invalidates the
    whole cache — coarse, but sound, and cheap to compute (~60 files).
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def cache_key(shard: Shard, source_digest: str, metrics: bool = False) -> str:
    """sha256(experiment + source digest + params + seed [+ metrics]).

    The metrics flag joins the key only when set: a metrics-enabled
    shard carries its snapshot inside the cached result, so it must not
    be served to (or from) metrics-off campaigns, while every
    pre-existing metrics-off cache entry stays valid.
    """
    token_fields = {
        "experiment": shard.experiment,
        "source": source_digest,
        "params": encode_value(dict(shard.params)),
        "seed": shard.seed,
    }
    if metrics:
        token_fields["metrics"] = True
    token = json.dumps(token_fields, sort_keys=True)
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


def cache_path(results_dir: Path, key: str) -> Path:
    """Where a shard with cache key ``key`` lives on disk."""
    return results_dir / ".cache" / f"{key}.json"


def cache_load(path: Path) -> Optional[Tuple[ExperimentResult, float]]:
    """Read a cached shard result; any corruption is a cache miss."""
    try:
        payload = json.loads(path.read_text())
        result = ExperimentResult.from_payload(payload["result"])
        return result, float(payload.get("elapsed", 0.0))
    except (OSError, ValueError, KeyError, TypeError):
        return None


def cache_store(path: Path, shard: Shard, result: ExperimentResult,
                elapsed: float) -> None:
    """Atomically write a shard result (tmp file + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": "campaign-shard/1",
        "shard": json.loads(shard.token()),
        "elapsed": round(elapsed, 6),
        "result": result.to_payload(),
    }
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


# --------------------------------------------------------------------------
# Shard execution: inline (jobs=1) and worker pool (jobs>1)


class _ShardTimeout(Exception):
    pass


def _execute(
    target: str, kwargs: Dict[str, Any], metrics: bool = False
) -> ExperimentResult:
    func = resolve_target(target)
    if metrics:
        # Ambient session: every Link/Switch the shard constructs
        # self-registers a hub. The snapshot rides inside result.data so
        # it crosses the worker queue and the cache with the result.
        from repro.metrics import MetricsSession

        meta: Dict[str, Any] = {}
        if kwargs.get("seed") is not None:
            meta["seed"] = kwargs["seed"]
        with MetricsSession() as session:
            result = func(**kwargs)
        if isinstance(result, ExperimentResult):
            result.data["metrics_snapshot"] = (
                session.snapshot(meta).to_payload()
            )
    else:
        result = func(**kwargs)
    if not isinstance(result, ExperimentResult):
        raise TypeError(
            f"{target} returned {type(result).__name__}, not ExperimentResult"
        )
    return result


def _run_inline(
    shard: Shard, timeout: Optional[float], metrics: bool = False
) -> ShardOutcome:
    """Run a shard in-process (jobs=1), enforcing the timeout via
    ``SIGALRM`` where the platform supports it."""
    use_alarm = (
        timeout is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    start = time.perf_counter()  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
    old_handler = None
    try:
        if use_alarm:
            def _on_alarm(signum, frame):
                raise _ShardTimeout()

            old_handler = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        result = _execute(shard.target, shard.kwargs, metrics)
        return ShardOutcome(shard, "ok", result,
                            elapsed=time.perf_counter() - start)  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
    except _ShardTimeout:
        return ShardOutcome(
            shard, "timeout",
            error=f"shard exceeded --timeout {timeout}s",
            elapsed=time.perf_counter() - start,  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
        )
    except Exception as exc:  # noqa: BLE001 - reported per shard
        return ShardOutcome(
            shard, "failed",
            error=f"{exc!r}\n{traceback.format_exc(limit=20)}",
            elapsed=time.perf_counter() - start,  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)


def _worker_main(task_queue, result_queue):  # pragma: no cover - child process
    """Worker loop: run tasks until the ``None`` sentinel arrives.

    In-shard exceptions are reported as results, never kill the worker;
    only a hard process death (crash/exit) is handled by the parent.
    """
    while True:
        task = task_queue.get()
        if task is None:
            return
        index, target, kwargs, metrics = task
        start = time.perf_counter()  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
        try:
            result = _execute(target, kwargs, metrics)
            result_queue.put(
                (index, "ok", result.to_payload(), time.perf_counter() - start)  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
            )
        except Exception as exc:  # noqa: BLE001 - reported per shard
            result_queue.put(
                (
                    index,
                    "failed",
                    f"{exc!r}\n{traceback.format_exc(limit=20)}",
                    time.perf_counter() - start,  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
                )
            )


class _PoolWorker:
    __slots__ = ("proc", "queue", "task", "started")

    def __init__(self, proc, task_queue):
        self.proc = proc
        self.queue = task_queue
        self.task: Optional[int] = None
        self.started: float = 0.0


def _run_pool(
    shards: List[Shard],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    progress: Optional[Callable[[str], None]] = None,
    metrics: bool = False,
) -> Dict[int, ShardOutcome]:
    """Dispatch shards across ``jobs`` spawned worker processes.

    Each worker has its own task queue (single-slot dispatch) so the
    parent always knows which shard a worker is running — required to
    terminate exactly the right process on a per-shard timeout.
    """
    import multiprocessing

    # fork where available: no re-execution of the parent __main__ and
    # ~10x cheaper worker startup. Shard results are a pure function of
    # the derived seed, so the start method cannot affect outputs.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    result_queue = ctx.Queue()

    def spawn_worker() -> _PoolWorker:
        task_queue = ctx.Queue()
        proc = ctx.Process(
            target=_worker_main, args=(task_queue, result_queue), daemon=True
        )
        proc.start()
        return _PoolWorker(proc, task_queue)

    pending = deque(range(len(shards)))
    attempts = [0] * len(shards)
    # Crash retries are not re-dispatched immediately: retry_backoff()
    # gates each one, so a poisoned shard (or a transiently sick
    # machine) cannot hot-loop worker respawns.
    not_before: Dict[int, float] = {}
    outcomes: Dict[int, ShardOutcome] = {}
    workers = [spawn_worker() for _ in range(min(jobs, len(shards)))]

    def record(index: int, status: str, payload, elapsed: float) -> None:
        shard = shards[index]
        if status == "ok":
            result = ExperimentResult.from_payload(payload)
            outcomes[index] = ShardOutcome(
                shard, "ok", result, elapsed=elapsed, attempts=attempts[index]
            )
        else:
            outcomes[index] = ShardOutcome(
                shard, status, error=str(payload), elapsed=elapsed,
                attempts=attempts[index],
            )
        if progress is not None:
            progress(f"[{len(outcomes)}/{len(shards)}] {shard.describe()}: {status}")

    def consume(message) -> int:
        index, status, payload, elapsed = message
        for worker in workers:
            if worker.task == index:
                worker.task = None
                break
        if index not in outcomes:  # ignore stale post-kill results
            record(index, status, payload, elapsed)
        return index

    try:
        while len(outcomes) < len(shards):
            # Dispatch to idle workers (skipping shards still backing
            # off — they rotate to the back of the queue).
            for worker in workers:
                if worker.task is None and pending:
                    index = None
                    for _ in range(len(pending)):
                        candidate = pending.popleft()
                        if candidate in outcomes:
                            continue
                        if time.monotonic() < not_before.get(candidate, 0.0):  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
                            pending.append(candidate)
                            continue
                        index = candidate
                        break
                    if index is None:
                        continue
                    attempts[index] += 1
                    worker.queue.put(
                        (index, shards[index].target, shards[index].kwargs,
                         metrics)
                    )
                    worker.task = index
                    worker.started = time.monotonic()  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
            # Collect one result (short timeout so health checks run).
            try:
                consume(result_queue.get(timeout=0.05))
            except queue_module.Empty:
                pass
            # Health checks: timeouts and crashed workers.
            for i, worker in enumerate(workers):
                index = worker.task
                if index is None:
                    continue
                ran_for = time.monotonic() - worker.started  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
                if timeout is not None and ran_for > timeout:
                    worker.proc.terminate()
                    worker.proc.join(5.0)
                    if index not in outcomes:
                        record(
                            index, "timeout",
                            f"shard exceeded --timeout {timeout}s", ran_for,
                        )
                    workers[i] = spawn_worker()
                elif not worker.proc.is_alive():
                    # Crash (worker never reports and exits mid-task).
                    # Drain any result that raced the death first.
                    try:
                        while True:
                            consume(result_queue.get_nowait())
                    except queue_module.Empty:
                        pass
                    if index not in outcomes:
                        if attempts[index] <= retries:
                            not_before[index] = time.monotonic() + retry_backoff(  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
                                shards[index], attempts[index]
                            )
                            pending.appendleft(index)
                        else:
                            record(
                                index, "failed",
                                f"worker process died (exitcode "
                                f"{worker.proc.exitcode}) after "
                                f"{attempts[index]} attempt(s)",
                                ran_for,
                            )
                    workers[i] = spawn_worker()
    finally:
        for worker in workers:
            try:
                worker.queue.put(None)
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.proc.join(2.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
    return outcomes


# --------------------------------------------------------------------------
# Aggregation: per-seed shards -> per-experiment summary tables


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _deep_merge(base: Dict[str, Any], extra: Dict[str, Any]) -> Dict[str, Any]:
    for key, value in extra.items():
        if isinstance(value, dict) and isinstance(base.get(key), dict):
            _deep_merge(base[key], value)
        else:
            base[key] = value
    return base


def _aggregate_rows(
    per_seed: List[ExperimentResult],
) -> Tuple[List[List[Any]], List[List[Optional[List[float]]]]]:
    """Cell-wise mean/min/max across seeds for one parameter group.

    Numeric cells become their mean; non-numeric cells pass through when
    identical across seeds and render as ``varies`` otherwise. Returns
    ``(rows, ranges)`` where ranges mirrors the table shape with
    ``[min, max]`` for numeric cells and ``None`` elsewhere.
    """
    rows: List[List[Any]] = []
    ranges: List[List[Optional[List[float]]]] = []
    for row_cells in zip(*(r.rows for r in per_seed)):
        out_row: List[Any] = []
        out_rng: List[Optional[List[float]]] = []
        for cells in zip(*row_cells):
            if all(_is_number(c) for c in cells):
                values = [float(c) for c in cells]
                out_row.append(sum(values) / len(values))
                out_rng.append([min(values), max(values)])
            elif all(c == cells[0] for c in cells):
                out_row.append(cells[0])
                out_rng.append(None)
            else:
                out_row.append("varies")
                out_rng.append(None)
        rows.append(out_row)
        ranges.append(out_rng)
    return rows, ranges


def aggregate(
    outcomes: List[ShardOutcome], seeds: int
) -> "OrderedDict[str, ExperimentResult]":
    """Merge shard outcomes into one summary ExperimentResult per
    experiment, preserving expansion order throughout so the output is
    identical no matter how the shards were scheduled."""
    by_experiment: "OrderedDict[str, List[ShardOutcome]]" = OrderedDict()
    for outcome in outcomes:
        by_experiment.setdefault(outcome.shard.experiment, []).append(outcome)

    summaries: "OrderedDict[str, ExperimentResult]" = OrderedDict()
    for name, group in by_experiment.items():
        ok = [o for o in group if o.ok]
        failed = [o for o in group if not o.ok]
        if not ok:
            summary = ExperimentResult(
                experiment=name,
                description="campaign: every shard of this experiment failed",
                headers=["shard", "status", "error"],
            )
            for outcome in failed:
                summary.add_row(
                    outcome.shard.describe(),
                    outcome.status,
                    outcome.error.splitlines()[0] if outcome.error else "",
                )
            summary.data["campaign"] = {
                "seeds": seeds,
                "truncated": True,
                "shards": [
                    {"key": json.loads(o.shard.token()), "status": o.status}
                    for o in group
                ],
            }
            summaries[name] = summary
            continue

        first = ok[0].result
        assert first is not None
        summary = ExperimentResult(
            experiment=first.experiment,
            description=first.description,
            headers=list(first.headers),
        )
        # Group ok shards by parameter set, in expansion order.
        param_groups: "OrderedDict[Tuple, List[ShardOutcome]]" = OrderedDict()
        for outcome in ok:
            param_groups.setdefault(outcome.shard.params, []).append(outcome)
        merged_data: Dict[str, Any] = {}
        all_ranges: List[List[List[Optional[List[float]]]]] = []
        seed_counts = set()
        for params, outs in param_groups.items():
            outs = sorted(outs, key=lambda o: o.shard.seed_slot)
            results = [o.result for o in outs]
            seed_counts.add(len(results))
            shapes = {
                (len(r.rows), tuple(len(row) for row in r.rows)) for r in results
            }
            if len(results) == 1 or len(shapes) > 1:
                if len(shapes) > 1:
                    summary.note(
                        f"{Shard(name, '', params).describe()}: table shape "
                        "varies across seeds; showing the first seed slot only"
                    )
                base = results[0]
                for row in base.rows:
                    summary.rows.append(list(row))
                for note in base.notes:
                    summary.note(note)
                _deep_merge(merged_data, base.data)
                all_ranges.append([[None] * len(row) for row in base.rows])
            else:
                rows, ranges = _aggregate_rows(results)
                for row in rows:
                    summary.rows.append(row)
                all_ranges.append(ranges)
        if seed_counts - {1}:
            summary.note(
                f"cell values are means over {max(seed_counts)} derived "
                "seeds; per-cell [min, max] in data['ranges']"
            )
        if failed:
            # Partial aggregate: crashed/timed-out shards are dropped
            # from the cells, never silently absorbed — the summary is
            # flagged truncated and each miss is itemized below.
            summary.note(
                f"TRUNCATED: aggregate covers {len(ok)} of {len(group)} "
                "shards; the rest crashed or timed out"
            )
        for outcome in failed:
            summary.note(
                f"FAILED shard {outcome.shard.describe()} "
                f"({outcome.status}): "
                + (outcome.error.splitlines()[0] if outcome.error else "")
            )
        if merged_data:
            summary.data.update(merged_data)
        summary.data["ranges"] = all_ranges
        summary.data["campaign"] = {
            "seeds": seeds,
            "truncated": bool(failed),
            "shards": [
                {
                    "key": json.loads(o.shard.token()),
                    "status": o.status,
                }
                for o in group
            ],
        }
        summaries[name] = summary
    return summaries


# --------------------------------------------------------------------------
# The campaign driver


def run_campaign(
    names: Optional[Sequence[str]] = None,
    *,
    seeds: int = 1,
    jobs: int = 1,
    base_seed: Optional[int] = 0,
    derive_seeds: bool = True,
    cache: bool = True,
    results_dir: str = "results",
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    grids: Optional[Mapping[str, List[Dict[str, Any]]]] = None,
    targets: Optional[Mapping[str, str]] = None,
    accepts_seed: Optional[frozenset] = None,
    progress: Optional[Callable[[str], None]] = None,
    metrics: bool = False,
) -> CampaignResult:
    """Run a campaign and return outcomes + aggregated summaries.

    See the module docstring for semantics. ``targets`` may inject or
    override ``name -> module:function`` entries (used by tests to run
    synthetic crashing/sleeping experiments through the real machinery).

    With ``metrics=True`` every shard runs inside a
    :class:`repro.metrics.MetricsSession`; per-shard snapshots ride
    through workers and the cache inside ``result.data`` and are merged
    per experiment into ``summary.data["metrics_snapshot"]`` (counters
    sum, histograms add bucket-wise, meta collects the seed variants).
    """
    start = time.perf_counter()  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
    if names is None:
        names = sorted(REGISTRY)
    shards = expand_campaign(
        names,
        seeds=seeds,
        base_seed=0 if (base_seed is None and derive_seeds) else base_seed,
        derive_seeds=derive_seeds,
        grids=grids,
        targets=targets,
        accepts_seed=accepts_seed,
    )

    results_path = Path(results_dir)
    outcomes: Dict[int, ShardOutcome] = {}
    to_run: List[int] = []
    digest = repro_source_digest() if cache else ""
    if cache:
        for i, shard in enumerate(shards):
            cached = cache_load(
                cache_path(results_path, cache_key(shard, digest, metrics))
            )
            if cached is not None:
                result, elapsed = cached
                outcomes[i] = ShardOutcome(
                    shard, "ok", result, elapsed=elapsed, attempts=0,
                    from_cache=True,
                )
                if progress is not None:
                    progress(f"[cache] {shard.describe()}")
            else:
                to_run.append(i)
    else:
        to_run = list(range(len(shards)))

    if to_run:
        if jobs <= 1:
            for i in to_run:
                outcomes[i] = _run_inline(shards[i], timeout, metrics)
                if progress is not None:
                    progress(
                        f"[{len(outcomes)}/{len(shards)}] "
                        f"{shards[i].describe()}: {outcomes[i].status}"
                    )
        else:
            fresh = _run_pool(
                [shards[i] for i in to_run], jobs, timeout, retries, progress,
                metrics,
            )
            for local_index, outcome in fresh.items():
                outcomes[to_run[local_index]] = outcome

    if cache:
        for i, outcome in outcomes.items():
            if outcome.ok and not outcome.from_cache:
                assert outcome.result is not None
                cache_store(
                    cache_path(
                        results_path, cache_key(shards[i], digest, metrics)
                    ),
                    shards[i], outcome.result, outcome.elapsed,
                )

    ordered = [outcomes[i] for i in range(len(shards))]

    # Lift snapshots out of shard data *after* cache_store (cached
    # entries keep theirs) and *before* aggregate (so table aggregation
    # never sees — or deep-merges — the raw payloads), merging them per
    # experiment across params and seeds.
    merged_snapshots: "OrderedDict[str, Any]" = OrderedDict()
    if metrics:
        from repro.metrics import Snapshot

        for outcome in ordered:
            if not outcome.ok or outcome.result is None:
                continue
            payload = outcome.result.data.pop("metrics_snapshot", None)
            if payload is None:
                continue
            snap = Snapshot.from_payload(payload)
            seen = merged_snapshots.get(outcome.shard.experiment)
            if seen is None:
                merged_snapshots[outcome.shard.experiment] = snap
            else:
                seen.merge(snap)

    summaries = aggregate(ordered, seeds)
    for name, snap in merged_snapshots.items():
        if name in summaries:
            summaries[name].data["metrics_snapshot"] = snap.to_payload()
    wall = time.perf_counter() - start  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
    stats = {
        "shards": len(ordered),
        "ok": sum(1 for o in ordered if o.ok),
        "failed": sum(1 for o in ordered if not o.ok),
        "cached": sum(1 for o in ordered if o.from_cache),
        "retried": sum(1 for o in ordered if o.attempts > 1),
        "jobs": jobs,
        "seeds": seeds,
    }
    return CampaignResult(ordered, summaries, seeds, wall_s=wall, stats=stats)


def write_manifest(campaign: CampaignResult, path: Path) -> None:
    """Machine-readable campaign manifest (CI asserts cache hit rates)."""
    payload = {
        "schema": "campaign-manifest/1",
        "stats": dict(campaign.stats, wall_s=round(campaign.wall_s, 3)),
        "shards": [
            {
                "key": json.loads(o.shard.token()),
                "status": o.status,
                "from_cache": o.from_cache,
                "attempts": o.attempts,
                "elapsed_s": round(o.elapsed, 4),
                "error": o.error.splitlines()[0] if o.error else "",
            }
            for o in campaign.outcomes
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))


# --------------------------------------------------------------------------
# Campaign benchmark (BENCH_campaign.json)


def run_sleep_probe(duration: float = 0.25, tag: int = 0) -> ExperimentResult:
    """Synthetic blocking shard for the fan-out probe: its cost is a
    ``time.sleep``, so wall-clock speedup under ``--jobs N`` measures the
    runner's dispatch/overlap machinery in isolation from the machine's
    core count (CPU-bound shards can only speed up with real cores)."""
    time.sleep(duration)
    result = ExperimentResult(
        experiment=f"fan-out probe #{tag}",
        description="synthetic blocking shard (campaign bench only)",
        headers=["tag", "blocked (s)"],
    )
    result.add_row(tag, duration)
    return result


def run_campaign_bench(
    output: str = "BENCH_campaign.json",
    jobs: int = 4,
    seeds: int = 1,
    names: Optional[Sequence[str]] = None,
    fanout_shards: int = 8,
    fanout_cost: float = 0.5,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = print,
) -> Dict[str, Any]:
    """Measure campaign speedups and write ``BENCH_campaign.json``.

    Three measurements: (1) full suite cold at ``--jobs 1`` vs
    ``--jobs N`` — CPU-bound, so the speedup tracks physical cores;
    (2) a warm-cache re-run of the full suite; (3) the fan-out probe
    (blocking shards), which demonstrates the runner's overlap is
    near-linear independent of core count. Also cross-checks that the
    ``--jobs 1`` and ``--jobs N`` runs produced bit-identical summaries.
    """
    import platform
    import tempfile

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    tmp1 = tempfile.mkdtemp(prefix="campaign_bench_j1_")
    tmp2 = tempfile.mkdtemp(prefix="campaign_bench_jN_")

    say(f"campaign bench: full suite cold, --jobs 1 (seeds={seeds}) ...")
    t0 = time.perf_counter()  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
    cold1 = run_campaign(
        names, seeds=seeds, jobs=1, cache=True, results_dir=tmp1,
        timeout=timeout,
    )
    cold1_s = time.perf_counter() - t0  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state

    say("campaign bench: full suite warm-cache re-run ...")
    t0 = time.perf_counter()  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
    warm = run_campaign(
        names, seeds=seeds, jobs=1, cache=True, results_dir=tmp1,
        timeout=timeout,
    )
    warm_s = time.perf_counter() - t0  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state

    say(f"campaign bench: full suite cold, --jobs {jobs} ...")
    t0 = time.perf_counter()  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
    coldN = run_campaign(
        names, seeds=seeds, jobs=jobs, cache=True, results_dir=tmp2,
        timeout=timeout,
    )
    coldN_s = time.perf_counter() - t0  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state

    deterministic = [s.render() for s in cold1.summaries.values()] == [
        s.render() for s in coldN.summaries.values()
    ]

    say(f"campaign bench: fan-out probe ({fanout_shards} blocking shards) ...")
    probe_grid = {
        "fanout-probe": [
            {"duration": fanout_cost, "tag": i} for i in range(fanout_shards)
        ]
    }
    probe_targets = {
        "fanout-probe": "repro.experiments.campaign:run_sleep_probe"
    }
    t0 = time.perf_counter()  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
    run_campaign(
        ["fanout-probe"], jobs=1, cache=False, grids=probe_grid,
        targets=probe_targets,
    )
    fanout1_s = time.perf_counter() - t0  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
    t0 = time.perf_counter()  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
    run_campaign(
        ["fanout-probe"], jobs=jobs, cache=False, grids=probe_grid,
        targets=probe_targets,
    )
    fanoutN_s = time.perf_counter() - t0  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state

    payload = {
        "schema": "campaign-bench/1",
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "full_suite": {
            "experiments": len(cold1.summaries),
            "shards": cold1.stats["shards"],
            "seeds": seeds,
            "jobs": jobs,
            "jobs1_cold_s": round(cold1_s, 3),
            f"jobs{jobs}_cold_s": round(coldN_s, 3),
            "speedup_jobs_cold": round(cold1_s / coldN_s, 3),
            "warm_s": round(warm_s, 3),
            "speedup_warm_cache": round(cold1_s / warm_s, 3),
            "warm_cached_shards": warm.stats["cached"],
            "deterministic_across_jobs": deterministic,
            "note": (
                "cold shards are CPU-bound: speedup_jobs_cold tracks "
                "physical cores (cpu_count above), while "
                "speedup_warm_cache measures the content-addressed cache"
            ),
        },
        "runner_fanout": {
            "shards": fanout_shards,
            "shard_cost_s": fanout_cost,
            "jobs1_s": round(fanout1_s, 3),
            f"jobs{jobs}_s": round(fanoutN_s, 3),
            "speedup_jobs": round(fanout1_s / fanoutN_s, 3),
            "note": (
                "blocking-cost shards isolate the runner's dispatch "
                "overlap from core count: this is the speedup shape the "
                "runner delivers per available core"
            ),
        },
    }
    Path(output).write_text(json.dumps(payload, indent=2, sort_keys=True))
    say(f"campaign bench written to {output}")
    return payload
