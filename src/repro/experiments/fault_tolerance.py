"""Fault tolerance: SFQ vs WFQ through a link outage, plus flow churn.

The paper's Figure 1 shows WFQ starving a late-starting flow on a
*variable-rate* server. A link outage is the extreme of rate
variability — capacity drops to zero and comes back — and this
experiment shows the same pathology in its harshest form:

* Two incumbent flows and one flow that joins mid-outage share one
  link. The link goes dark, the incumbents' queues build, then the
  link recovers.
* Under **SFQ**, virtual time is self-clocked (v(t) follows the packet
  actually in service) so it freezes during the outage; when the link
  returns, the late joiner's tags are competitive immediately and every
  flow converges to its fair share — Theorem 1 never stops holding.
* Under **WFQ**, the fluid GPS reference keeps "transmitting" at the
  assumed capacity while the real link is dark. Virtual time races
  ahead of reality, and after recovery the late joiner waits behind the
  incumbents' entire accumulated backlog of stale low tags — the
  starvation window grows with the outage length.

Runtime invariant monitors (:mod:`repro.faults.monitors`) watch the run
*while it happens*: Theorem 1's fairness bound online, virtual-time
monotonicity, and packet conservation through pause/replay. A second
scenario churns flows (join/leave/rejoin) through a seeded outage with
``recovery="drop"`` to exercise the add/remove and loss-accounting
paths under the same monitors.

Everything is seeded through :class:`RandomStreams`: the same seed
reproduces the identical faulted run, byte for byte.
"""

from __future__ import annotations

import warnings
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.core.base import Scheduler
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.faults.injectors import FlowChurn, LinkOutage
from repro.faults.monitors import MonitorSuite, install_monitors
from repro.servers.base import ConstantCapacity
from repro.servers.link import Link
from repro.simulation.engine import Simulator
from repro.simulation.random import RandomStreams
from repro.traffic.cbr import CBRSource
from repro.transport.sink import PacketSink

#: Link capacity (bits/s) and packet length (bits) for both scenarios.
CAPACITY = 1e6
PACKET_LENGTH = 8000

#: Outage scenario timeline (seconds).
T_DOWN = 2.0
T_UP = 3.5
LATE_START = 2.5
HORIZON = 7.0


def _scheduler(algorithm: str) -> Scheduler:
    # WFQ must be told a capacity; it has no way to see the outage. The
    # registry routes it to assumed_capacity and SFQ ignores it.
    return make_scheduler(algorithm, capacity=CAPACITY, auto_register=False)


def _make_scheduler(algorithm: str) -> Scheduler:
    """Deprecated pre-registry construction path.

    .. deprecated::
        Use :func:`repro.core.registry.make_scheduler` instead.
    """
    warnings.warn(
        "fault_tolerance._make_scheduler is deprecated; use "
        "repro.core.registry.make_scheduler(name, capacity=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _scheduler(algorithm)


def run_outage_scenario(
    algorithm: str, seed: int = 1
) -> Tuple[Dict[str, Dict[Hashable, float]], MonitorSuite, Dict[str, object]]:
    """One outage run; returns (per-window received bits, monitors, info).

    Three equal-weight flows at 0.45C each: ``inc1``/``inc2`` start at
    t=0, ``late`` joins mid-outage. The link is down over
    ``[T_DOWN, T_UP)`` and replays the interrupted packet on recovery.
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    scheduler = _scheduler(algorithm)
    weight = CAPACITY / 3.0
    for flow in ("inc1", "inc2", "late"):
        scheduler.add_flow(flow, weight)
    link = Link(
        sim, scheduler, ConstantCapacity(CAPACITY), name=f"faults-{algorithm}"
    )
    # Record mode: WFQ is *expected* to violate Theorem 1's bound here
    # (that is the result); the monitors measure rather than abort.
    monitors = install_monitors(link, mode="record")
    sink = PacketSink(f"dst-{algorithm}")
    link.departure_hooks.append(sink.on_packet)

    rate = 0.45 * CAPACITY
    for flow, start in (("inc1", 0.0), ("inc2", 0.0), ("late", LATE_START)):
        CBRSource(
            sim,
            flow,
            link.send,
            rate,
            PACKET_LENGTH,
            start_time=start,
            jitter=0.05,
            rng=streams.stream(f"cbr:{flow}"),
        ).start()

    outage = LinkOutage(sim, link, schedule=[(T_DOWN, T_UP)], recovery="replay")
    outage.start()
    sim.run(until=HORIZON, max_events=2_000_000)
    monitors.audit()

    windows = {
        "pre-outage": (0.0, T_DOWN),
        "outage": (T_DOWN, T_UP),
        "recovery 1st s": (T_UP, T_UP + 1.0),
        "recovery": (T_UP, HORIZON),
    }
    received = {
        name: {
            flow: sink.count(flow, t1, t2) * float(PACKET_LENGTH)
            for flow in ("inc1", "inc2", "late")
        }
        for name, (t1, t2) in windows.items()
    }
    info = {
        "truncated": sim.truncated,
        "outages": outage.outages,
        "downtime": outage.downtime,
        "transmitted": link.packets_transmitted,
        "dropped": link.packets_dropped,
        "receive_series": {
            flow: sink.series(flow) for flow in ("inc1", "inc2", "late")
        },
    }
    return received, monitors, info


def run_churn_scenario(seed: int = 1) -> Tuple[Dict[str, object], MonitorSuite]:
    """Flow churn + seeded flapping outage on an SFQ link, monitored.

    Two base flows run throughout; three churn flows join and leave on
    seeded on/off cycles (re-joins restart their tag chains at the
    current v(t), SFQ's restart rule). The link flaps on a seeded
    renewal process and *drops* the interrupted packet on each
    recovery. All three monitors run in record mode and must stay
    clean — Theorem 1 makes no assumptions the faults can break.
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    scheduler = make_scheduler("SFQ", auto_register=False)
    weight = CAPACITY / 3.0
    scheduler.add_flow("base1", weight)
    scheduler.add_flow("base2", weight)
    link = Link(sim, scheduler, ConstantCapacity(CAPACITY), name="faults-churn")
    monitors = install_monitors(link, mode="record")
    sink = PacketSink("dst-churn")
    link.departure_hooks.append(sink.on_packet)

    for flow in ("base1", "base2"):
        CBRSource(
            sim,
            flow,
            link.send,
            0.35 * CAPACITY,
            PACKET_LENGTH,
            jitter=0.05,
            rng=streams.stream(f"cbr:{flow}"),
        ).start()

    def make_source(flow_id: Hashable, start: float, stop: float) -> CBRSource:
        return CBRSource(
            sim,
            flow_id,
            link.send,
            0.25 * CAPACITY,
            PACKET_LENGTH,
            start_time=start,
            stop_time=stop,
        )

    churn = FlowChurn(
        sim,
        link,
        make_source,
        streams=streams,
        flow_ids=["churn1", "churn2", "churn3"],
        mean_on=1.5,
        mean_off=1.0,
        weight=weight,
        stop_time=9.0,
    )
    churn.start()
    outage = LinkOutage(
        sim,
        link,
        streams=streams,
        mean_time_to_failure=2.5,
        mean_outage=0.3,
        recovery="drop",
        stop_time=9.0,
    )
    outage.start()
    sim.run(until=12.0, max_events=2_000_000)
    monitors.audit()

    stats = {
        "joins": churn.joins,
        "leaves": churn.leaves,
        "outages": outage.outages,
        "downtime": outage.downtime,
        "dropped": link.packets_dropped,
        "transmitted": link.packets_transmitted,
        "truncated": sim.truncated,
        "max_gap": monitors.fairness.max_gap if monitors.fairness else 0.0,
    }
    return stats, monitors


def run_fault_tolerance(
    seed: int = 1,
    algorithms: Sequence[str] = ("SFQ", "WFQ"),
    include_churn: bool = True,
) -> ExperimentResult:
    """The ``faults`` CLI experiment: outage comparison + churn audit.

    ``algorithms`` selects which outage scenarios run and
    ``include_churn`` gates the churn audit, so the campaign runner can
    shard the scenario grid (one shard per outage algorithm plus one for
    churn) across worker processes; the default arguments reproduce the
    full monolithic experiment, and concatenating the sharded results in
    grid order yields the same table and notes.
    """
    result = ExperimentResult(
        experiment="Fault tolerance: outage, churn, invariant monitors",
        description=(
            f"Link down over [{T_DOWN}s, {T_UP}s); flow 'late' joins at "
            f"t={LATE_START}s. Per-window received Kbits and the late "
            f"flow's fraction of its fair share (C/3). SFQ re-converges "
            f"on recovery; WFQ starves the late joiner behind stale "
            f"virtual time."
        ),
        headers=[
            "scheduler",
            "window",
            "inc1 Kb",
            "inc2 Kb",
            "late Kb",
            "late/fair %",
            "Thm-1 violations",
        ],
    )
    scenarios: Dict[str, Dict[str, object]] = {}
    all_violations: List[Dict[str, object]] = []
    window_spans = {
        "pre-outage": T_DOWN - 0.0,
        "outage": T_UP - T_DOWN,
        "recovery 1st s": 1.0,
        "recovery": HORIZON - T_UP,
    }
    for algorithm in algorithms:
        received, monitors, info = run_outage_scenario(algorithm, seed=seed)
        fairness_violations = (
            len(monitors.fairness.violations) if monitors.fairness else 0
        )
        late_share: Dict[str, float] = {}
        for window, span in window_spans.items():
            bits = received[window]
            # During the outage nothing is transmitted; fair share is
            # what the *working* portion of the window could carry.
            working = span if window != "outage" else 0.0
            fair = CAPACITY / 3.0 * working
            share = bits["late"] / fair if fair > 0 else 0.0
            late_share[window] = share
            result.add_row(
                algorithm,
                window,
                bits["inc1"] / 1e3,
                bits["inc2"] / 1e3,
                bits["late"] / 1e3,
                share * 100.0,
                fairness_violations if window == "recovery" else "",
            )
        payloads = monitors.violations_payload()
        all_violations.extend(
            dict(p, scenario=f"outage:{algorithm}") for p in payloads
        )
        scenarios[algorithm] = {
            "received": received,
            "late_share": late_share,
            "violations": payloads,
            "fairness_violations": fairness_violations,
            "conservation_ok": monitors.conservation.ok
            if monitors.conservation
            else True,
            "max_gap": monitors.fairness.max_gap if monitors.fairness else 0.0,
            "info": {
                k: v for k, v in info.items() if k != "receive_series"
            },
            "receive_series": info["receive_series"],
        }
        result.note(
            f"{algorithm}: recovery late/fair = "
            f"{late_share['recovery'] * 100:.1f}%, "
            f"Theorem-1 violations = {fairness_violations}, "
            f"conservation "
            + ("ok" if scenarios[algorithm]["conservation_ok"] else "BROKEN")
        )

    result.data["scenarios"] = scenarios
    if include_churn:
        churn_stats, churn_monitors = run_churn_scenario(seed=seed)
        result.note(
            f"churn scenario (SFQ): {churn_stats['joins']} joins / "
            f"{churn_stats['leaves']} leaves, {churn_stats['outages']} outages "
            f"({churn_stats['downtime']:.2f}s down, drop-on-recovery), "
            f"{churn_stats['dropped']} packets dropped, "
            f"{len(churn_monitors.violations)} invariant violations"
        )
        result.data["churn"] = churn_stats
        churn_payloads = churn_monitors.violations_payload()
        result.data["churn_violations"] = churn_payloads
        all_violations.extend(
            dict(p, scenario="churn") for p in churn_payloads
        )
    # Flat scenario-tagged list: downstream tooling (the chaos campaign,
    # CI gates) reads one key instead of walking per-scenario dicts.
    result.data["violations"] = all_violations
    result.data["seed"] = seed
    return result
