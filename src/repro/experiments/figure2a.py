"""Figure 2(a): reduction in maximum delay of SFQ relative to WFQ.

Pure analytics (eq. 58-59): with 200-byte packets on a 100 Mb/s link,
the difference between WFQ's and SFQ's per-packet delay bounds is

.. math:: \\Delta = \\frac{l}{r_f} - \\frac{(|Q| - 1) l}{C}

plotted for flow rates from 16 Kb/s to 1 Mb/s and various numbers of
flows. The paper's companion numeric example: with 70 flows at 1 Mb/s
and 200 flows at 64 Kb/s on that link, the 64 Kb/s flows' bound drops
by 20.39 ms under SFQ while the 1 Mb/s flows' grows by only 2.48 ms.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.delay_bounds import (
    wfq_sfq_delay_delta,
    wfq_sfq_delay_delta_equal_lengths,
    wfq_sfq_delta_positive_condition,
)
from repro.core.packet import kbps, mbps
from repro.experiments.harness import ExperimentResult

LINK = mbps(100)
PACKET = 200 * 8  # bits

#: Flow rates swept on the x axis of Figure 2(a).
RATE_SWEEP = [kbps(16), kbps(32), kbps(64), kbps(128), kbps(256), kbps(512), mbps(1)]
#: Flow counts (families of curves).
FLOWS_SWEEP = [50, 100, 200, 400]


def run_figure2a() -> ExperimentResult:
    """Delta of max-delay bounds (ms), per flow rate and flow count."""
    result = ExperimentResult(
        experiment="Figure 2(a)",
        description=(
            "Reduction in max delay bound, SFQ vs WFQ (ms); 200 B "
            "packets, C = 100 Mb/s. Positive = SFQ's bound is lower."
        ),
        headers=["flow rate"] + [f"|Q|={q}" for q in FLOWS_SWEEP],
    )
    series: Dict[int, List[float]] = {q: [] for q in FLOWS_SWEEP}
    for rate in RATE_SWEEP:
        cells = []
        for n_flows in FLOWS_SWEEP:
            delta = wfq_sfq_delay_delta_equal_lengths(PACKET, rate, n_flows, LINK)
            series[n_flows].append(delta)
            cells.append(delta * 1e3)
        result.add_row(f"{rate / 1e3:.0f} Kb/s", *cells)

    # The paper's 70 x 1 Mb/s + 200 x 64 Kb/s example (full eq. 58).
    n_video, n_audio = 70, 200
    q_total = n_video + n_audio
    audio_delta = wfq_sfq_delay_delta(
        l_packet=PACKET,
        packet_rate=kbps(64),
        l_max=PACKET,
        sum_lmax_others=(q_total - 1) * PACKET,
        capacity=LINK,
    )
    video_delta = wfq_sfq_delay_delta(
        l_packet=PACKET,
        packet_rate=mbps(1),
        l_max=PACKET,
        sum_lmax_others=(q_total - 1) * PACKET,
        capacity=LINK,
    )
    result.note(
        f"mixed example: 64 Kb/s flows gain {audio_delta * 1e3:.2f} ms "
        f"(paper: 20.39 ms); 1 Mb/s flows lose {-video_delta * 1e3:.2f} ms "
        "(paper: 2.48 ms)"
    )
    result.note(
        "eq. 60 check: delta >= 0 iff r_f/C <= 1/(|Q|-1) — "
        + ", ".join(
            f"|Q|={q}: crossover at {LINK / (q - 1) / 1e3:.0f} Kb/s"
            for q in FLOWS_SWEEP
        )
    )
    result.data["series"] = series
    result.data["audio_delta"] = audio_delta
    result.data["video_delta"] = video_delta

    from repro.experiments.charts import ascii_chart

    result.data["charts"] = [
        ascii_chart(
            {
                f"|Q|={q}": [
                    (rate / 1e3, delta * 1e3)
                    for rate, delta in zip(RATE_SWEEP, series[q])
                ]
                for q in FLOWS_SWEEP
            },
            title="Figure 2(a): max-delay reduction of SFQ vs WFQ",
            x_label="flow rate (Kb/s)",
            y_label="ms",
            height=12,
        )
    ]
    result.data["condition_check"] = [
        (q, rate, wfq_sfq_delta_positive_condition(q, rate, LINK))
        for q in FLOWS_SWEEP
        for rate in RATE_SWEEP
    ]
    return result
