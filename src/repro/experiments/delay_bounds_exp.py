"""Theorems 4/5 and the SCFQ/WFQ delay comparisons (eq. 56-59).

Every packet of every flow is checked against its scheduler's
EAT-based departure bound:

* SFQ (Theorem 4): ``EAT + sum_{n != f} l_n^max/C + l^j/C + delta/C``;
* SCFQ (eq. 56):   ``EAT + sum_{n != f} l_n^max/C + l^j/r``;
* Virtual Clock / WFQ-style GR bound: ``EAT + l^j/r + l_max/C``.

The workload sends bursty (leaky-bucket-conforming) traffic so queues
actually form and the bounds are exercised near their tight region; the
experiment reports the worst slack (min over packets of bound - actual
departure, >= 0 required) and the maximum EAT-relative delay, whose gap
between SCFQ and SFQ realizes eq. 57's ``l/r - l/C``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.delay_bounds import (
    expected_arrival_times,
    scfq_delay_bound,
    scfq_sfq_delay_delta,
    sfq_delay_bound,
    wfq_delay_bound,
)
from repro.core import Packet, Scheduler
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.servers import CapacityProcess, ConstantCapacity, Link, TwoRateSquareWave
from repro.simulation import Simulator

CAPACITY = 1_000_000.0  # 1 Mb/s
#: (flow, rate bits/s, packet bits, burst size in packets)
FLOWS: Sequence[Tuple[str, float, int, int]] = (
    ("slow", 32_000.0, 1600, 4),
    ("mid1", 96_000.0, 1600, 8),
    ("mid2", 96_000.0, 1600, 8),
    ("mid3", 96_000.0, 800, 8),
    ("fast1", 200_000.0, 1600, 16),
    ("fast2", 200_000.0, 1600, 16),
    ("fast3", 200_000.0, 800, 16),
)


def _burst_schedule(
    rate: float, length: int, burst: int, horizon: float
) -> List[Tuple[float, int]]:
    """Bursty but (burst*length, rate)-leaky-bucket-conforming arrivals:
    a burst of ``burst`` packets every ``burst * length / rate``."""
    schedule: List[Tuple[float, int]] = []
    gap = burst * length / rate
    t = 0.0
    while t < horizon:
        schedule.extend((t, length) for _ in range(burst))
        t += gap
    return schedule


def _run(
    make_scheduler: Callable[[], Scheduler],
    capacity: CapacityProcess,
    horizon: float,
) -> Link:
    sim = Simulator()
    sched = make_scheduler()
    for flow, rate, _length, _burst in FLOWS:
        sched.add_flow(flow, rate)
    link = Link(sim, sched, capacity)

    def inject() -> None:
        for flow, rate, length, burst in FLOWS:
            for i, (t, l_bits) in enumerate(
                _burst_schedule(rate, length, burst, horizon)
            ):
                sim.at(t, lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)), flow, i, length)

    sim.at(0.0, inject)
    sim.run(until=horizon * 1.5)
    return link


def _per_flow_check(
    link: Link,
    bound_for: Callable[[str, float, float, int], float],
) -> Dict[str, Tuple[float, float]]:
    """Per flow: (worst slack, max EAT-relative delay)."""
    out: Dict[str, Tuple[float, float]] = {}
    for flow, rate, _length, _burst in FLOWS:
        records = sorted(link.tracer.departed(flow), key=lambda r: r.seqno)
        if not records:
            continue
        eats = expected_arrival_times(
            [r.arrival for r in records],
            [r.length for r in records],
            [rate] * len(records),
        )
        worst_slack = float("inf")
        max_rel_delay = 0.0
        for record, eat in zip(records, eats):
            bound = bound_for(flow, rate, eat, record.length)
            worst_slack = min(worst_slack, bound - record.departure)
            max_rel_delay = max(max_rel_delay, record.departure - eat)
        out[flow] = (worst_slack, max_rel_delay)
    return out


def run_delay_bounds(horizon: float = 30.0) -> ExperimentResult:
    """Theorem 4 on constant + FC servers; eq. 56/57 SCFQ comparison."""
    sum_lmax = {f: 0.0 for f, _r, _l, _b in FLOWS}
    lmax_by_flow = {f: l for f, _r, l, _b in FLOWS}
    l_max_global = max(lmax_by_flow.values())
    for flow in sum_lmax:
        sum_lmax[flow] = sum(l for f2, l in lmax_by_flow.items() if f2 != flow)

    square = TwoRateSquareWave(2 * CAPACITY, 0.25, 0.0, 0.25)
    servers: List[Tuple[str, CapacityProcess, float]] = [
        ("constant", ConstantCapacity(CAPACITY), 0.0),
        (f"FC square (delta={square.delta:.0f}b)", square, square.delta),
    ]

    result = ExperimentResult(
        experiment="Theorems 4/5 + eq. 56-57",
        description=(
            "Worst slack of per-packet departure bounds (s; >= 0 means "
            "the bound holds) and max EAT-relative delay of the slow "
            "(32 Kb/s) flow under SFQ / SCFQ / VirtualClock."
        ),
        headers=[
            "server",
            "scheduler",
            "worst slack any flow (s)",
            "slow-flow max delay (s)",
        ],
    )

    data: Dict[str, Dict[str, Dict[str, Tuple[float, float]]]] = {}
    for server_name, capacity, delta in servers:
        data[server_name] = {}
        schedulers: List[Tuple[str, Callable[[], Scheduler], Callable]] = [
            (
                "SFQ",
                lambda: make_scheduler("SFQ", auto_register=False),
                lambda flow, rate, eat, l_pkt: sfq_delay_bound(
                    eat, sum_lmax[flow], l_pkt, CAPACITY, delta
                ),
            ),
            (
                "SCFQ",
                lambda: make_scheduler("SCFQ", auto_register=False),
                lambda flow, rate, eat, l_pkt: scfq_delay_bound(
                    eat, sum_lmax[flow], l_pkt, rate, CAPACITY
                )
                + delta / CAPACITY,
            ),
            (
                "VirtualClock",
                lambda: make_scheduler("VirtualClock", auto_register=False),
                lambda flow, rate, eat, l_pkt: wfq_delay_bound(
                    eat, l_pkt, rate, l_max_global, CAPACITY
                )
                + delta / CAPACITY,
            ),
        ]
        for sched_name, make, bound_for in schedulers:
            link = _run(make, capacity, horizon)
            checks = _per_flow_check(link, bound_for)
            data[server_name][sched_name] = checks
            worst_slack = min(s for s, _d in checks.values())
            slow_delay = checks["slow"][1]
            result.add_row(server_name, sched_name, worst_slack, slow_delay)

    # eq. 57 numeric check (the paper's 24.4 ms example, scaled here).
    slow_rate = 32_000.0
    delta_bound = scfq_sfq_delay_delta(1600, slow_rate, CAPACITY)
    paper_example = scfq_sfq_delay_delta(200 * 8, 64_000.0, 100e6)
    result.note(
        f"eq. 57 bound gap for the slow flow: {delta_bound * 1e3:.2f} ms "
        f"per server; the paper's 100 Mb/s example gives "
        f"{paper_example * 1e3:.2f} ms (paper: 24.4 ms)"
    )
    result.data["checks"] = data
    result.data["eq57_gap"] = delta_bound
    result.data["paper_example_gap"] = paper_example
    return result
