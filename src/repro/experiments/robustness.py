"""Robustness analysis: do the reproduced shapes survive the knobs the
paper didn't specify?

A reproduction whose headline results only appear at one lucky
parameter point proves little. This module sweeps the two results whose
absolute numbers depend on unstated testbed parameters:

* **Figure 1(b)** across TCP buffer sizes and seeds — the claim "WFQ
  starves the late TCP flow, SFQ shares within a few packets" must hold
  at *every* point;
* **Figure 2(b)** across seeds — the WFQ-vs-SFQ average-delay excess for
  low-throughput flows at ~80% utilization must stay large and positive.

``seed_sweep`` is the generic helper (mean/std over seeds).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

from repro.experiments.figure1 import run_figure1_variant
from repro.experiments.figure2b import run_point
from repro.experiments.harness import ExperimentResult


def seed_sweep(
    fn: Callable[[int], float], seeds: Sequence[int]
) -> Tuple[float, float, List[float]]:
    """Run ``fn(seed)`` per seed; return (mean, sample std, values)."""
    values = [fn(seed) for seed in seeds]
    mean = sum(values) / len(values)
    if len(values) > 1:
        std = math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))
    else:
        std = 0.0
    return mean, std, values


def run_figure1_robustness(
    buffers: Sequence[int] = (200, 240, 320),
    seeds: Sequence[int] = (1, 2, 3),
) -> ExperimentResult:
    """Figure 1(b)'s shape across buffer sizes x seeds.

    Regime note (documented in EXPERIMENTS.md): the tag-blocking
    starvation requires the incumbent's standing queue to survive its
    first loss event, which needs a buffer of roughly >= 200 packets at
    these rates. Below that, TCP loss dynamics dominate *both*
    schedulers and WFQ's pathology flips direction (it starves the
    incumbent instead) — wild sensitivity that is itself evidence for
    the paper's point, while SFQ's split stays buffer-insensitive in
    the starvation regime.
    """
    result = ExperimentResult(
        experiment="Robustness: Figure 1(b) across buffers and seeds",
        description=(
            "starvation ratio = src2/src3 packets in [0.5s,1s], within "
            "the standing-queue regime (buffer >= 200 pkts). The paper's "
            "shape requires WFQ >> 1 and SFQ ~ 1 at every point."
        ),
        headers=["buffer (pkts)", "seed", "WFQ src2/src3", "SFQ src2/src3",
                 "WFQ src3 first 435ms", "SFQ src3 first 435ms"],
    )
    points = []
    for buffer_packets in buffers:
        for seed in seeds:
            wfq = run_figure1_variant("WFQ", seed=seed, tcp_buffer_packets=buffer_packets)
            sfq = run_figure1_variant("SFQ", seed=seed, tcp_buffer_packets=buffer_packets)
            wfq_ratio = wfq.src2_last_half / max(wfq.src3_last_half, 1)
            sfq_ratio = sfq.src2_last_half / max(sfq.src3_last_half, 1)
            points.append(
                {
                    "buffer": buffer_packets,
                    "seed": seed,
                    "wfq_ratio": wfq_ratio,
                    "sfq_ratio": sfq_ratio,
                    "wfq_435": wfq.src3_first_435ms,
                    "sfq_435": sfq.src3_first_435ms,
                }
            )
            result.add_row(
                buffer_packets, seed, wfq_ratio, sfq_ratio,
                wfq.src3_first_435ms, sfq.src3_first_435ms,
            )
    result.note("shape holds iff min(WFQ ratio) >> max(SFQ ratio) and "
                "SFQ's src3 always ramps quickly")
    result.data["points"] = points
    return result


def run_figure2b_robustness(
    seeds: Sequence[int] = (11, 12, 13, 14, 15),
    n_low: int = 4,
    duration: float = 120.0,
) -> ExperimentResult:
    """Figure 2(b)'s WFQ delay excess at ~83% utilization, across seeds."""

    def excess(seed: int) -> float:
        wfq = run_point("WFQ", n_low, duration=duration, seed=seed)
        sfq = run_point("SFQ", n_low, duration=duration, seed=seed)
        return wfq.avg_delay_low / sfq.avg_delay_low - 1.0

    mean, std, values = seed_sweep(excess, seeds)
    result = ExperimentResult(
        experiment="Robustness: Figure 2(b) excess across seeds",
        description=(
            f"WFQ/SFQ - 1 for the 32 Kb/s flows' average delay at "
            f"{(0.7 + 0.032 * n_low) * 100:.1f}% utilization, "
            f"{duration:.0f}s horizon (paper: +53% at 80.81%)."
        ),
        headers=["seed", "WFQ excess %"],
    )
    for seed, value in zip(seeds, values):
        result.add_row(seed, value * 100)
    result.add_row("mean +- std", f"{mean * 100:.1f} +- {std * 100:.1f}")
    result.data.update(mean=mean, std=std, values=values)
    return result
