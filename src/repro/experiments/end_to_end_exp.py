"""Corollary 1: end-to-end delay over a tandem of SFQ servers.

A flow crosses K SFQ servers (FC, possibly different δ per hop) with
propagation delays between them. Corollary 1 composes the per-hop
(62)-style guarantees: the packet leaves hop K no later than

.. math::

   EAT^1(p) + \\sum_{n=1}^{K} \\beta^n + \\sum_{n=1}^{K-1} \\tau^{n,n+1}

with :math:`\\beta^n = \\sum_{m \\ne f} l_m^{max}/C + l^j/C + \\delta/C`.
The experiment validates the bound packet-by-packet for K = 1..5 and
reports the growth of the SCFQ-vs-SFQ bound gap with K (the paper: the
24.4 ms single-server difference becomes 122 ms at K = 5).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.delay_bounds import (
    expected_arrival_times,
    scfq_sfq_delay_delta,
)
from repro.analysis.end_to_end import deterministic_path_bound
from repro.core import Packet
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.network import Tandem
from repro.servers import ConstantCapacity, TwoRateSquareWave
from repro.simulation import Simulator

CAPACITY = 1_000_000.0
PROP_DELAY = 0.01
#: Cross traffic at every hop: (flow, rate, length, burst packets).
CROSS: Sequence[Tuple[str, float, int, int]] = (
    ("x1", 300_000.0, 1600, 10),
    ("x2", 300_000.0, 800, 10),
)
TAGGED = ("f", 200_000.0, 1600, 6)


def run_tandem(k: int, horizon: float = 10.0, variable_rate: bool = False):
    """Run the tagged flow through k hops with per-hop cross traffic."""
    sim = Simulator()
    schedulers = []
    capacities = []
    deltas: List[float] = []
    for _hop in range(k):
        sched = make_scheduler("SFQ", auto_register=False)
        sched.add_flow(TAGGED[0], TAGGED[1])
        for flow, rate, _l, _b in CROSS:
            sched.add_flow(flow, rate)
        schedulers.append(sched)
        if variable_rate:
            capacity = TwoRateSquareWave(2 * CAPACITY, 0.1, 0.0, 0.1)
            deltas.append(capacity.delta)
        else:
            capacity = ConstantCapacity(CAPACITY)
            deltas.append(0.0)
        capacities.append(capacity)
    tandem = Tandem(
        sim,
        schedulers,
        capacities,
        propagation_delays=[PROP_DELAY] * (k - 1),
        # Cross traffic is hop-local; only the tagged flow traverses.
        forward_filter=lambda packet: packet.flow == TAGGED[0],
    )

    # Tagged flow: bursts through the whole path.
    flow, rate, length, burst = TAGGED
    gap = burst * length / rate
    t = 0.0
    seq = 0
    while t < horizon:
        for _ in range(burst):
            sim.at(t, lambda s: tandem.ingress(Packet(flow, length, seqno=s)), seq)
            seq += 1
        t += gap
    # Independent cross traffic at every hop.
    for hop, link in enumerate(tandem.links):
        for xflow, xrate, xlength, xburst in CROSS:
            xgap = xburst * xlength / xrate
            t = 0.0
            xseq = 0
            while t < horizon:
                for _ in range(xburst):
                    sim.at(
                        t,
                        lambda lk, s, fl, lb: lk.send(Packet(fl, lb, seqno=s)),
                        link,
                        xseq,
                        xflow,
                        xlength,
                    )
                    xseq += 1
                t += xgap
    sim.run(until=horizon * 2)
    return tandem, deltas


def run_end_to_end(max_hops: int = 5, horizon: float = 10.0) -> ExperimentResult:
    """Corollary 1 verification for K = 1..max_hops."""
    flow, rate, length, _burst = TAGGED
    sum_lmax_others = sum(l for _f, _r, l, _b in CROSS)

    result = ExperimentResult(
        experiment="Corollary 1 (end-to-end delay)",
        description=(
            "Packet-wise check of the composed EAT-based bound over K "
            "SFQ hops with cross traffic; slack >= 0 everywhere means "
            "the corollary holds."
        ),
        headers=[
            "K",
            "measured max e2e delay (s)",
            "Corollary 1 bound (s)",
            "worst slack (s)",
            "SCFQ-SFQ bound gap (ms)",
        ],
    )
    data: Dict[int, Dict[str, float]] = {}
    for k in range(1, max_hops + 1):
        tandem, deltas = run_tandem(k, horizon=horizon)
        first = tandem.links[0].tracer
        records = sorted(
            (r for r in first.for_flow(flow) if r.departure is not None),
            key=lambda r: r.seqno,
        )
        eats = expected_arrival_times(
            [r.arrival for r in records],
            [r.length for r in records],
            [rate] * len(records),
        )
        eat_by_seq = {r.seqno: e for r, e in zip(records, eats)}
        betas = [
            sum_lmax_others / CAPACITY + length / CAPACITY + d / CAPACITY
            for d in deltas
        ]
        taus = [PROP_DELAY] * (k - 1)
        worst_slack = float("inf")
        max_delay = 0.0
        exits = {s: t for t, s in tandem.sink.series(flow)}
        for seqno, eat in eat_by_seq.items():
            exit_time = exits.get(seqno)
            if exit_time is None:
                continue
            bound = deterministic_path_bound(eat, betas, taus)
            worst_slack = min(worst_slack, bound - exit_time)
            arrival = next(r.arrival for r in records if r.seqno == seqno)
            max_delay = max(max_delay, exit_time - arrival)
        bound_total = deterministic_path_bound(0.0, betas, taus)
        scfq_gap = k * scfq_sfq_delay_delta(length, rate, CAPACITY)
        result.add_row(k, max_delay, bound_total, worst_slack, scfq_gap * 1e3)
        data[k] = {
            "max_delay": max_delay,
            "bound": bound_total,
            "worst_slack": worst_slack,
            "scfq_gap": scfq_gap,
        }
    paper_gap = 5 * scfq_sfq_delay_delta(1600, 64_000.0, 100e6)
    result.note(
        "bound column excludes EAT (relative bound); gap grows linearly "
        f"with K. Paper's 100 Mb/s example at K=5: {paper_gap * 1e3:.1f} ms "
        "(paper: 122 ms)"
    )
    result.data["per_k"] = data
    return result
