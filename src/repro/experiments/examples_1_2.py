"""Examples 1 and 2 from the paper: WFQ's fairness weaknesses.

* **Example 1** shows WFQ's fairness measure is at least
  :math:`l_f^{max}/r_f + l_m^{max}/r_m` — twice the Golestani lower
  bound. Flow f sends two max-length packets at t=0; flow m sends one
  max-length packet and two half-length packets. WFQ may serve
  :math:`p_f^1, p_m^1, p_m^2, p_m^3, p_f^2`, giving flow m a normalized
  lead of :math:`2 l_m^{max}/r_m` over the window where it gets all the
  service.

* **Example 2** shows WFQ is unfair on a variable-rate server: the real
  capacity is 1 pkt/s for the first second, then C pkt/s, while WFQ's
  fluid simulation assumes C throughout. Flow f's head start in virtual
  time lets it take (almost) the entire second period although flow m is
  backlogged; the fair share would be C/2 each.
"""

from __future__ import annotations

from typing import Tuple

from repro.core import Packet, TieBreak
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link, PiecewiseCapacity
from repro.simulation import Simulator


def run_example1(c: float = 1.0, lmax: int = 1000) -> ExperimentResult:
    """Example 1: two-flow adversarial pattern on a constant-rate link.

    ``c`` is the common normalized packet service time l_max/r; both
    flows get weight ``lmax / c``.
    """
    rate = lmax / c
    sim = Simulator()
    # Ties broken in favor of flow m's packets reproduce the paper's
    # chosen service order p_f^1, p_m^1, p_m^2, p_m^3, p_f^2.
    sched = make_scheduler(
        "WFQ",
        capacity=2 * rate,
        tie_break=lambda state, packet: (0 if packet.flow == "m" else 1,),
    )
    sched.add_flow("f", rate)
    sched.add_flow("m", rate)
    link = Link(sim, sched, ConstantCapacity(2 * rate))

    def inject() -> None:
        link.send(Packet("f", lmax, seqno=0))
        link.send(Packet("f", lmax, seqno=1))
        link.send(Packet("m", lmax, seqno=0))
        link.send(Packet("m", lmax // 2, seqno=1))
        link.send(Packet("m", lmax // 2, seqno=2))

    sim.at(0.0, inject)
    sim.run()

    # The interval [t1, t2] of the paper: service span of p_m^1..p_m^3.
    recs_m = link.tracer.for_flow("m")
    t1 = recs_m[0].start_service
    t2 = recs_m[2].departure
    wf = link.tracer.work_in_interval("f", t1, t2)
    wm = link.tracer.work_in_interval("m", t1, t2)
    gap = abs(wf / rate - wm / rate)
    lower_bound = 0.5 * (lmax / rate + lmax / rate)

    result = ExperimentResult(
        experiment="Example 1",
        description="WFQ normalized service gap vs the fairness lower bound",
        headers=["quantity", "value"],
    )
    result.add_row("W_f(t1,t2)/r_f", wf / rate)
    result.add_row("W_m(t1,t2)/r_m", wm / rate)
    result.add_row("gap |W_f/r_f - W_m/r_m|", gap)
    result.add_row("Golestani lower bound", lower_bound)
    result.add_row("gap / lower bound", gap / lower_bound)
    result.note("paper: the gap reaches l_f/r_f + l_m/r_m = 2x the lower bound")
    result.data.update(gap=gap, lower_bound=lower_bound)
    return result


def _example2_capacity(c: float) -> PiecewiseCapacity:
    """1 pkt/s in [0,1), then C pkt/s (unit-length packets)."""
    return PiecewiseCapacity.from_list(
        [(0.0, 1.0), (1.0, c), (2.0, c)], average_rate=c
    )


def run_example2(c: float = 10.0) -> ExperimentResult:
    """Example 2: WFQ vs SFQ when real capacity < assumed capacity."""
    counts: dict = {}
    for name, make in (
        ("WFQ", lambda: make_scheduler("WFQ", capacity=c)),
        ("SFQ", lambda: make_scheduler("SFQ")),
    ):
        sim = Simulator()
        sched = make()
        sched.add_flow("f", 1.0)
        sched.add_flow("m", 1.0)
        link = Link(sim, sched, _example2_capacity(c))

        def inject_f() -> None:
            for i in range(int(c) + 1):
                link.send(Packet("f", 1, seqno=i))

        def inject_m() -> None:
            for i in range(int(c)):
                link.send(Packet("m", 1, seqno=i))

        sim.at(0.0, inject_f)
        sim.at(1.0, inject_m)
        sim.run(until=2.0)
        counts[name] = (
            link.tracer.work_in_interval("f", 1.0, 2.0),
            link.tracer.work_in_interval("m", 1.0, 2.0),
        )

    result = ExperimentResult(
        experiment="Example 2",
        description=(
            f"Work in [1s,2s] when the real rate was 1 pkt/s in [0,1) and "
            f"C={c:g} pkt/s in [1,2); fair share is C/2 each"
        ),
        headers=["scheduler", "W_f(1,2)", "W_m(1,2)", "fair share"],
    )
    for name, (wf, wm) in counts.items():
        result.add_row(name, wf, wm, c / 2)
    result.note("paper: WFQ gives flow m at most 1 packet; SFQ splits evenly")
    result.data["counts"] = counts
    return result
