"""Appendix B: Fair Airport — WFQ's delay guarantee plus fairness over
variable-rate servers.

Theorem 9: on a server with minimum capacity C and Σ r_n ≤ C,
FA delivers packet p by ``EAT(p) + l/r + l_max/C`` — WFQ's guarantee,
which is *lower* for high-rate flows than SFQ's (that's FA's point).

Theorem 8: FA's fairness measure over any interval where two flows are
backlogged is at most ``3(l_f/r_f + l_m/r_m) + 2*l_max/C`` — larger
than SFQ's but bounded, even when the server runs *above* its minimum
capacity (the theorem only needs a floor).

The experiment checks both on a constant-rate server and on a
variable-rate server whose rate never drops below the minimum capacity,
and reports how the work splits between the Virtual Clock GSQ and the
SFQ ASQ.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.delay_bounds import (
    expected_arrival_times,
    fair_airport_delay_bound,
    fair_airport_fairness_bound,
)
from repro.analysis.fairness import empirical_fairness_measure
from repro.core import Packet
from repro.core.registry import make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link, TwoRateSquareWave
from repro.simulation import Simulator

MIN_CAPACITY = 4_000.0
#: (flow, rate, length, burst packets); sum of rates = 4000 = C_min.
FLOWS: Sequence[Tuple[str, float, int, int]] = (
    ("a", 1000.0, 400, 3),
    ("b", 1000.0, 800, 3),
    ("c", 2000.0, 400, 6),
)
HORIZON = 40.0


def _run(variable_rate: bool) -> Tuple[Link, FairAirport]:
    sim = Simulator()
    fa = make_scheduler("FairAirport", auto_register=False)
    for flow, rate, _l, _b in FLOWS:
        fa.add_flow(flow, rate)
    if variable_rate:
        # Rate swings between C_min and 3*C_min: always >= the minimum,
        # which is all Theorems 8/9 require.
        capacity = TwoRateSquareWave(3 * MIN_CAPACITY, 0.5, MIN_CAPACITY, 0.5)
    else:
        capacity = ConstantCapacity(MIN_CAPACITY)
    link = Link(sim, fa, capacity, name="fair-airport")

    for flow, rate, length, burst in FLOWS:
        gap = burst * length / rate
        t = 0.0
        seq = 0
        while t < HORIZON:
            for _ in range(burst):
                sim.at(
                    t,
                    lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)),
                    flow,
                    seq,
                    length,
                )
                seq += 1
            t += gap
    sim.run(until=HORIZON * 1.5)
    return link, fa


def _delay_check(link: Link) -> Dict[str, float]:
    """Worst slack of Theorem 9's bound per flow."""
    l_max = max(l for _f, _r, l, _b in FLOWS)
    out: Dict[str, float] = {}
    for flow, rate, _length, _burst in FLOWS:
        records = sorted(link.tracer.departed(flow), key=lambda r: r.seqno)
        eats = expected_arrival_times(
            [r.arrival for r in records],
            [r.length for r in records],
            [rate] * len(records),
        )
        worst = float("inf")
        for record, eat in zip(records, eats):
            bound = fair_airport_delay_bound(
                eat, record.length, rate, l_max, MIN_CAPACITY
            )
            worst = min(worst, bound - record.departure)
        out[flow] = worst
    return out


def run_fair_airport() -> ExperimentResult:
    """Theorems 8 and 9 on constant and above-minimum variable servers."""
    l_max = max(l for _f, _r, l, _b in FLOWS)
    result = ExperimentResult(
        experiment="Fair Airport (Theorems 8/9)",
        description=(
            "Worst Theorem 9 delay slack per flow (s, >= 0 required) and "
            "empirical fairness vs the Theorem 8 bound."
        ),
        headers=["server", "metric", "value", "bound"],
    )
    data = {}
    for name, variable in (("constant C", False), ("variable >= C", True)):
        link, fa = _run(variable)
        delays = _delay_check(link)
        rates = {f: r for f, r, _l, _b in FLOWS}
        lmaxes = {f: l for f, _r, l, _b in FLOWS}
        fairness = {}
        for fa_flow, fb_flow in (("a", "b"), ("a", "c"), ("b", "c")):
            measured = empirical_fairness_measure(
                link.tracer, fa_flow, fb_flow, rates[fa_flow], rates[fb_flow]
            )
            bound = fair_airport_fairness_bound(
                lmaxes[fa_flow],
                rates[fa_flow],
                lmaxes[fb_flow],
                rates[fb_flow],
                l_max,
                MIN_CAPACITY,
            )
            fairness[(fa_flow, fb_flow)] = (measured, bound)
        worst_delay_slack = min(delays.values())
        worst_pair = max(fairness, key=lambda k: fairness[k][0] / fairness[k][1])
        result.add_row(name, "min Theorem 9 slack (s)", worst_delay_slack, ">= 0")
        measured, bound = fairness[worst_pair]
        result.add_row(
            name,
            f"H({worst_pair[0]},{worst_pair[1]}) (s)",
            measured,
            bound,
        )
        result.add_row(
            name,
            "GSQ / ASQ service split",
            f"{fa.served_via_gsq}/{fa.served_via_asq}",
            "",
        )
        data[name] = {"delays": delays, "fairness": fairness,
                      "gsq": fa.served_via_gsq, "asq": fa.served_via_asq}
    result.note("Theorem 9: FA matches WFQ's EAT + l/r + l_max/C bound")
    result.note("Theorem 8: H <= 3(l_f/r_f + l_m/r_m) + 2 l_max/C")
    result.data["cases"] = data
    return result
