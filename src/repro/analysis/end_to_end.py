"""End-to-end delay composition — Theorem 6, Corollary 1, Appendix A.5.

A network of servers, each guaranteeing
:math:`P(L^i(p) \\le EAT^i(p) + \\beta^i + \\gamma) \\ge 1 - B^i e^{-\\lambda^i \\gamma}`,
guarantees (Corollary 1, eq. 64)

.. math::

   P\\Big(L^K(p) \\le EAT^1(p) + \\sum_n \\beta^n + \\sum_n \\tau^{n,n+1}
   + \\gamma\\Big) \\ge 1 - \\big(\\sum_n B^n\\big)
   e^{-\\gamma / \\sum_n (1/\\lambda^n)}

Deterministic FC servers are the B=0 special case. A.5 then turns the
EAT-based guarantee into a delay bound for leaky-bucket flows using
:math:`e^j \\le \\sigma / r`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class ServerGuarantee:
    """One hop's (62)-style guarantee: beta seconds, (B, lambda) tail."""

    beta: float
    b: float = 0.0
    lam: float = float("inf")


def compose_path(
    hops: Sequence[ServerGuarantee], propagation_delays: Sequence[float]
) -> ServerGuarantee:
    """Corollary 1: compose per-hop guarantees into a path guarantee.

    Returns a :class:`ServerGuarantee` whose ``beta`` includes the
    propagation delays, with the composed ``(B, lambda)`` envelope.
    """
    if len(propagation_delays) != max(0, len(hops) - 1):
        raise ValueError("need K-1 propagation delays for K hops")
    beta = sum(h.beta for h in hops) + sum(propagation_delays)
    b = sum(h.b for h in hops)
    inv = sum(1.0 / h.lam for h in hops if h.lam != float("inf"))
    lam = float("inf") if inv == 0 else 1.0 / inv
    return ServerGuarantee(beta=beta, b=b, lam=lam)


def deterministic_path_bound(
    eat_first: float,
    betas: Sequence[float],
    propagation_delays: Sequence[float],
) -> float:
    """Eq. 64 with B=0: L^K(p) <= EAT^1(p) + sum(beta) + sum(tau)."""
    if len(propagation_delays) != max(0, len(betas) - 1):
        raise ValueError("need K-1 propagation delays for K hops")
    return eat_first + sum(betas) + sum(propagation_delays)


def path_delay_tail(guarantee: ServerGuarantee, gamma: float) -> float:
    """P(path delay exceeds its composed bound by more than gamma)."""
    if gamma < 0:
        raise ValueError("gamma must be non-negative")
    if guarantee.lam == float("inf"):
        return 0.0
    return guarantee.b * math.exp(-gamma * guarantee.lam)


def leaky_bucket_e2e_delay_bound(
    sigma: float,
    rho: float,
    r_hat: float,
    l_packet: float,
    betas: Sequence[float],
    propagation_delays: Sequence[float],
) -> float:
    """A.5's closed form for (sigma, rho) flows.

    :math:`e^j = EAT^1 + l^j/\\hat r - A^1 \\le \\sigma/r` for any
    ``r <= r_hat``; taking ``r = r_hat``:

    .. math:: d^j \\le \\sigma/\\hat r - l^j/\\hat r + \\sum\\beta + \\sum\\tau
    """
    if rho > r_hat:
        raise ValueError(
            f"flow rate rho={rho} exceeds reserved rate r_hat={r_hat}; "
            "the queueing backlog would be unbounded"
        )
    theta = sum(betas) + sum(propagation_delays)
    return sigma / r_hat - l_packet / r_hat + theta
