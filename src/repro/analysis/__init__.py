"""Analysis: empirical fairness, theorem bounds, admission, statistics."""

from repro.analysis.admission import (
    delay_edd_schedulable,
    rate_functions_admissible,
    rates_admissible,
)
from repro.analysis.delay_bounds import (
    edd_delay_bound,
    ebf_tail_probability,
    expected_arrival_times,
    fair_airport_delay_bound,
    fair_airport_fairness_bound,
    delay_shift_condition,
    flat_sfq_bound_equal_lengths,
    hierarchical_fc_params,
    partitioned_sfq_bound_equal_lengths,
    scfq_delay_bound,
    scfq_sfq_delay_delta,
    sfq_delay_bound,
    sfq_throughput_lower_bound,
    wfq_delay_bound,
    wfq_sfq_delay_delta,
    wfq_sfq_delay_delta_equal_lengths,
    wfq_sfq_delta_positive_condition,
)
from repro.analysis.end_to_end import (
    ServerGuarantee,
    compose_path,
    deterministic_path_bound,
    leaky_bucket_e2e_delay_bound,
    path_delay_tail,
)
from repro.analysis.fairness import (
    backlogged_intervals,
    drr_fairness_bound,
    empirical_fairness_measure,
    golestani_lower_bound,
    jain_index,
    normalized_service_gap,
    scfq_fairness_bound,
    sfq_fairness_bound,
    wfq_fairness_lower_bound,
)
from repro.analysis.servers import measure_fc_delta, sample_ebf_deficits
from repro.analysis.stats import (
    delay_summary,
    mean,
    percentile,
    stddev,
    windowed_throughput,
)

__all__ = [
    # fairness
    "golestani_lower_bound",
    "sfq_fairness_bound",
    "scfq_fairness_bound",
    "wfq_fairness_lower_bound",
    "drr_fairness_bound",
    "empirical_fairness_measure",
    "normalized_service_gap",
    "backlogged_intervals",
    "jain_index",
    # delay / throughput bounds
    "expected_arrival_times",
    "sfq_throughput_lower_bound",
    "sfq_delay_bound",
    "scfq_delay_bound",
    "wfq_delay_bound",
    "scfq_sfq_delay_delta",
    "wfq_sfq_delay_delta",
    "wfq_sfq_delay_delta_equal_lengths",
    "wfq_sfq_delta_positive_condition",
    "hierarchical_fc_params",
    "flat_sfq_bound_equal_lengths",
    "partitioned_sfq_bound_equal_lengths",
    "delay_shift_condition",
    "edd_delay_bound",
    "fair_airport_delay_bound",
    "fair_airport_fairness_bound",
    "ebf_tail_probability",
    # end-to-end
    "ServerGuarantee",
    "compose_path",
    "deterministic_path_bound",
    "path_delay_tail",
    "leaky_bucket_e2e_delay_bound",
    # admission
    "rates_admissible",
    "rate_functions_admissible",
    "delay_edd_schedulable",
    # server characterization
    "measure_fc_delta",
    "sample_ebf_deficits",
    # stats
    "mean",
    "percentile",
    "stddev",
    "windowed_throughput",
    "delay_summary",
]
