"""Classical queueing-theory reference formulas.

Used to cross-validate the simulator: a single FIFO server fed by
Poisson arrivals of fixed-size packets is an M/D/1 queue, whose mean
wait has a closed form (Pollaczek–Khinchine). The Figure 2(b)
simulation aggregate is close to M/D/1 (superposition of independent
Poisson flows is Poisson; packets are fixed-size), so the analytic
value anchors the absolute delay scale of the reproduction.

All formulas use: arrival rate λ (packets/s), service time s (seconds,
deterministic) or mean service 1/μ, utilization ρ = λ·s < 1.
"""

from __future__ import annotations


def _check_utilization(rho: float) -> None:
    if not 0 <= rho < 1:
        raise ValueError(f"utilization must be in [0, 1), got {rho}")


def md1_mean_wait(arrival_rate: float, service_time: float) -> float:
    """Mean waiting time (excluding own service) of an M/D/1 queue.

    Pollaczek–Khinchine: W = ρ s / (2 (1 - ρ)).
    """
    rho = arrival_rate * service_time
    _check_utilization(rho)
    return rho * service_time / (2 * (1 - rho))


def md1_mean_delay(arrival_rate: float, service_time: float) -> float:
    """Mean sojourn (wait + service) of an M/D/1 queue."""
    return md1_mean_wait(arrival_rate, service_time) + service_time


def mm1_mean_delay(arrival_rate: float, service_rate: float) -> float:
    """Mean sojourn of an M/M/1 queue: 1 / (μ - λ)."""
    rho = arrival_rate / service_rate
    _check_utilization(rho)
    return 1.0 / (service_rate - arrival_rate)


def mg1_mean_wait(
    arrival_rate: float, mean_service: float, second_moment_service: float
) -> float:
    """Pollaczek–Khinchine for general service: W = λ E[S²] / (2(1-ρ))."""
    rho = arrival_rate * mean_service
    _check_utilization(rho)
    return arrival_rate * second_moment_service / (2 * (1 - rho))


def md1_p_wait_exceeds(arrival_rate: float, service_time: float, t: float) -> float:
    """Crude exponential tail estimate for M/D/1 wait (upper-ish bound).

    Uses the effective-bandwidth decay rate θ solving the Kingman bound
    shape ``P(W > t) <= exp(-2 (1-ρ) t / (ρ s))`` — adequate for
    sanity-window assertions, not for precision work.
    """
    rho = arrival_rate * service_time
    _check_utilization(rho)
    if t < 0:
        raise ValueError("t must be non-negative")
    if rho == 0:
        return 0.0
    import math

    return math.exp(-2 * (1 - rho) * t / (rho * service_time))
