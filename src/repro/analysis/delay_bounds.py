"""Analytic bound calculators for the paper's theorems.

Each function implements one numbered result so that experiments can
print paper-formula vs. measured side by side:

* Theorem 2 — SFQ throughput guarantee on an FC server (eq. 22);
* Theorem 4 — SFQ delay guarantee on an FC server (eq. 38);
* eq. 56 — SCFQ's tight delay bound (Golestani/Goyal);
* WFQ's delay guarantee :math:`EAT + l/r + l_{max}/C`;
* eq. 57/58/59 — the SFQ-vs-SCFQ and SFQ-vs-WFQ max-delay deltas behind
  Figure 2(a);
* eq. 65 — the FC parameters of a hierarchical virtual server;
* eq. 68 — Delay EDD's bound on an FC server (Theorem 7);
* eq. 73 — the delay-shifting condition;
* eq. 137 — Fair Airport's WFQ-equivalent bound (Theorem 9).

All take plain numbers (bits, bits/s, seconds) so they are trivially
checkable against simulation traces.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.tagmath import eat_step


def expected_arrival_times(
    arrivals: Sequence[float],
    lengths: Sequence[int],
    rates: Sequence[float],
) -> List[float]:
    """EAT per eq. 37 for one flow's packet sequence."""
    if not (len(arrivals) == len(lengths) == len(rates)):
        raise ValueError("arrivals, lengths, rates must align")
    eats: List[float] = []
    prev_eat = float("-inf")
    prev_service = 0.0
    for arrival, length, rate in zip(arrivals, lengths, rates):
        eat, service = eat_step(arrival, prev_eat, prev_service, length, rate)
        eats.append(eat)
        prev_eat = eat
        prev_service = service
    return eats


# ----------------------------------------------------------------------
# Throughput (Theorems 2 / 3)
# ----------------------------------------------------------------------
def sfq_throughput_lower_bound(
    rf: float,
    interval: float,
    sum_lmax_all: float,
    capacity: float,
    delta: float,
    lf_max: float,
) -> float:
    """Theorem 2, eq. 22: guaranteed W_f over a backlogged interval."""
    return (
        rf * interval
        - rf * sum_lmax_all / capacity
        - rf * delta / capacity
        - lf_max
    )


def ebf_tail_probability(b: float, alpha: float, gamma: float) -> float:
    """The envelope :math:`B e^{-\\alpha\\gamma}` of Definitions 2 / Thm 3/5."""
    if gamma < 0:
        raise ValueError("gamma must be non-negative")
    return b * math.exp(-alpha * gamma)


# ----------------------------------------------------------------------
# Single-server delay (Theorems 4 / 5, eq. 56-59)
# ----------------------------------------------------------------------
def sfq_delay_bound(
    eat: float,
    sum_lmax_others: float,
    l_packet: float,
    capacity: float,
    delta: float = 0.0,
) -> float:
    """Theorem 4, eq. 38: SFQ departure-time bound on FC(C, delta)."""
    return eat + sum_lmax_others / capacity + l_packet / capacity + delta / capacity


def scfq_delay_bound(
    eat: float,
    sum_lmax_others: float,
    l_packet: float,
    packet_rate: float,
    capacity: float,
) -> float:
    """Eq. 56: L_SCFQ(p) <= EAT + sum_{n != f} l_n^max / C + l / r."""
    return eat + sum_lmax_others / capacity + l_packet / packet_rate


def wfq_delay_bound(
    eat: float, l_packet: float, packet_rate: float, l_max: float, capacity: float
) -> float:
    """WFQ/PGPS guarantee: EAT + l/r + l_max/C (used for eq. 58)."""
    return eat + l_packet / packet_rate + l_max / capacity


def scfq_sfq_delay_delta(l_packet: float, packet_rate: float, capacity: float) -> float:
    """Eq. 57: extra max delay of SCFQ over SFQ, per server."""
    return l_packet / packet_rate - l_packet / capacity


def wfq_sfq_delay_delta(
    l_packet: float,
    packet_rate: float,
    l_max: float,
    sum_lmax_others: float,
    capacity: float,
) -> float:
    """Eq. 58: Δ(p) = max-delay(WFQ) - max-delay(SFQ). Positive means
    SFQ's bound is lower."""
    return (
        l_packet / packet_rate
        + l_max / capacity
        - sum_lmax_others / capacity
        - l_packet / capacity
    )


def wfq_sfq_delay_delta_equal_lengths(
    l: float, packet_rate: float, n_flows: int, capacity: float
) -> float:
    """Eq. 59: Δ(p) with all packets of length l."""
    return l / packet_rate - (n_flows - 1) * l / capacity


def wfq_sfq_delta_positive_condition(n_flows: int, rate: float, capacity: float) -> bool:
    """Eq. 60: SFQ's bound beats WFQ's iff r_f/C <= 1/(|Q|-1)."""
    if n_flows <= 1:
        return True
    return 1.0 / (n_flows - 1) >= rate / capacity


# ----------------------------------------------------------------------
# Hierarchy (eq. 65), delay shifting (eq. 69-73)
# ----------------------------------------------------------------------
def hierarchical_fc_params(
    rf: float, sum_lmax_all: float, capacity: float, delta: float, lf_max: float
) -> Tuple[float, float]:
    """Eq. 65: the virtual server of class f on an FC(C, delta) link is
    FC with these (rate, burstiness) parameters."""
    return (
        rf,
        rf * sum_lmax_all / capacity + rf * delta / capacity + lf_max,
    )


def flat_sfq_bound_equal_lengths(
    eat: float, n_flows: int, l: float, capacity: float, delta: float
) -> float:
    """Eq. 69: SFQ bound with |Q| equal-length flows on FC(C, delta)."""
    return eat + (n_flows - 1) * l / capacity + delta / capacity + l / capacity


def partitioned_sfq_bound_equal_lengths(
    eat: float,
    partition_size: int,
    partition_rate: float,
    n_partitions: int,
    l: float,
    capacity: float,
    delta: float,
) -> float:
    """Eq. 71: SFQ bound for a flow inside partition Q_i (rate C_i) of a
    K-way hierarchical split of an FC(C, delta) link."""
    return (
        eat
        + (partition_size + 1) * l / partition_rate
        + (delta + n_partitions * l) / capacity
    )


def delay_shift_condition(
    partition_size: int,
    total_flows: int,
    n_partitions: int,
    partition_rate: float,
    capacity: float,
) -> bool:
    """Eq. 73: hierarchical partitioning lowers the bound iff
    (|Q_i| + 1) / (|Q| - K) < C_i / C."""
    if total_flows <= n_partitions:
        raise ValueError("need |Q| > K")
    return (partition_size + 1) / (total_flows - n_partitions) < partition_rate / capacity


# ----------------------------------------------------------------------
# Delay EDD (Theorem 7) and Fair Airport (Theorem 9)
# ----------------------------------------------------------------------
def edd_delay_bound(deadline: float, l_max: float, capacity: float, delta: float) -> float:
    """Eq. 68: L_EDD(p) <= D(p) + l_max/C + delta/C on FC(C, delta)."""
    return deadline + l_max / capacity + delta / capacity


def fair_airport_delay_bound(
    eat: float, l_packet: float, packet_rate: float, l_max: float, capacity: float
) -> float:
    """Eq. 137: L_FA(p) <= EAT + l/r + l_max/C — identical to WFQ."""
    return eat + l_packet / packet_rate + l_max / capacity


def fair_airport_fairness_bound(
    lf_max: float, rf: float, lm_max: float, rm: float, l_max: float, capacity: float
) -> float:
    """Theorem 8, eq. 135: 3(l_f/r_f + l_m/r_m) + 2*beta."""
    beta = l_max / capacity
    return 3.0 * (lf_max / rf + lm_max / rm) + 2.0 * beta
