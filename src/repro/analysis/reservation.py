"""Admission control / reservation manager — the control plane an
IntServ deployment would put in front of an SFQ link.

The paper's data-plane guarantees become useful operationally once a
control plane enforces their preconditions and quotes their bounds:

* Theorems 2–5 require Σ r_n ≤ C — :class:`ReservationManager` refuses
  reservations that would break it;
* Theorem 4 then gives each admitted flow a per-packet delay bound that
  *every already-admitted flow keeps* when a new flow joins only if the
  admission also respects their quoted bounds — the manager re-derives
  every flow's bound on each admission and refuses changes that would
  violate a previously quoted guarantee;
* A.5 extends quotes to end-to-end paths for leaky-bucket flows.

This module is an extension (the paper assumes "appropriate admission
control procedures" without building one), but everything it computes
is a direct application of the paper's formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.analysis.delay_bounds import sfq_delay_bound


class AdmissionError(Exception):
    """Raised when a reservation cannot be honored."""


@dataclass
class Reservation:
    """One admitted flow's contract."""

    flow_id: Hashable
    rate: float  # bits/s
    max_packet: int  # bits
    quoted_delay_bound: float  # seconds, EAT-relative (Theorem 4)


@dataclass
class ReservationManager:
    """Tracks reservations on one SFQ server and quotes Theorem 4 bounds.

    Parameters mirror the server: ``capacity`` (C) and ``delta``
    (δ(C), 0 for a constant-rate link). ``utilization_cap`` leaves
    headroom below C (IntServ deployments rarely admit to 100%).
    """

    capacity: float
    delta: float = 0.0
    utilization_cap: float = 1.0
    reservations: Dict[Hashable, Reservation] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise AdmissionError("capacity must be positive")
        if not 0 < self.utilization_cap <= 1:
            raise AdmissionError("utilization_cap must be in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def reserved_rate(self) -> float:
        """Sum of admitted rates (bits/s)."""
        return sum(r.rate for r in self.reservations.values())

    @property
    def available_rate(self) -> float:
        return self.capacity * self.utilization_cap - self.reserved_rate

    def _bound_for(
        self, flow_id: Hashable, max_packet: int, others: List[Reservation]
    ) -> float:
        sum_lmax_others = sum(r.max_packet for r in others)
        return sfq_delay_bound(
            0.0, sum_lmax_others, max_packet, self.capacity, self.delta
        )

    def quote(self, rate: float, max_packet: int) -> Tuple[bool, float]:
        """Would (rate, max_packet) be admitted, and with what bound?

        Pure query — no state change. The returned bound is
        EAT-relative: a packet departs by ``EAT + bound``.
        """
        if rate <= 0 or max_packet <= 0:
            raise AdmissionError("rate and max_packet must be positive")
        admissible = rate <= self.available_rate * (1 + 1e-12)
        bound = self._bound_for(None, max_packet, list(self.reservations.values()))
        return admissible, bound

    def admit(
        self,
        flow_id: Hashable,
        rate: float,
        max_packet: int,
        delay_requirement: Optional[float] = None,
    ) -> Reservation:
        """Admit a flow or raise :class:`AdmissionError` explaining why.

        Checks, in order: no duplicate; Σr ≤ C·cap; the newcomer's own
        Theorem 4 bound meets its ``delay_requirement``; and no
        previously admitted flow's *quoted* bound is invalidated (a new
        flow enlarges everyone's Σ l_n^max term).
        """
        if flow_id in self.reservations:
            raise AdmissionError(f"flow {flow_id!r} already has a reservation")
        admissible, bound = self.quote(rate, max_packet)
        if not admissible:
            raise AdmissionError(
                f"rate {rate:g} exceeds available {self.available_rate:g} b/s"
            )
        if delay_requirement is not None and bound > delay_requirement:
            raise AdmissionError(
                f"achievable bound {bound:.6g}s exceeds requirement "
                f"{delay_requirement:.6g}s"
            )
        # Re-derive every incumbent's bound including the newcomer.
        for other in self.reservations.values():
            peers = [
                r for r in self.reservations.values() if r.flow_id != other.flow_id
            ]
            new_bound = self._bound_for(
                other.flow_id,
                other.max_packet,
                peers + [Reservation(flow_id, rate, max_packet, 0.0)],
            )
            if new_bound > other.quoted_delay_bound + 1e-12:
                raise AdmissionError(
                    f"admitting {flow_id!r} would raise {other.flow_id!r}'s "
                    f"bound from {other.quoted_delay_bound:.6g}s to "
                    f"{new_bound:.6g}s"
                )
        reservation = Reservation(flow_id, float(rate), int(max_packet), bound)
        self.reservations[flow_id] = reservation
        return reservation

    def admit_with_headroom(
        self,
        flow_id: Hashable,
        rate: float,
        max_packet: int,
        bound_headroom: float,
    ) -> Reservation:
        """Admit quoting a padded bound so later arrivals fit.

        Quoting exact Theorem 4 bounds makes the *first* admitted flow
        un-displaceable (any newcomer raises its Σ l term). Real control
        planes quote with headroom; ``bound_headroom`` (seconds) is
        added to the quoted bound.
        """
        reservation = self.admit(flow_id, rate, max_packet)
        reservation.quoted_delay_bound += bound_headroom
        return reservation

    def release(self, flow_id: Hashable) -> None:
        """Tear down a reservation."""
        if flow_id not in self.reservations:
            raise AdmissionError(f"flow {flow_id!r} has no reservation")
        del self.reservations[flow_id]

    def configure_scheduler(self, scheduler) -> None:
        """Install all admitted flows (with their rates) on a scheduler."""
        # Insertion-ordered dict: admission order is part of the model
        # and flow ids may be of mixed (unsortable) types.
        for reservation in self.reservations.values():  # lint: disable=DET003  dict preserves deterministic admit order
            if reservation.flow_id not in scheduler.flows:
                scheduler.add_flow(reservation.flow_id, reservation.rate)
