"""Admission control tests.

The paper's guarantees hold under admission conditions:

* Theorems 2-5 require :math:`\\sum_{n \\in Q} r_n \\le C` (or, for
  per-packet rates, :math:`\\sum_n R_n(v) \\le C` at every virtual time);
* Theorem 7 (Delay EDD) requires the schedulability test of eq. 67.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def rates_admissible(rates: Sequence[float], capacity: float) -> bool:
    """Σ r_n <= C (with a tiny tolerance for float accumulation)."""
    return sum(rates) <= capacity * (1 + 1e-12)


def rate_functions_admissible(
    tagged_packets: Sequence[Sequence[Tuple[float, float, float]]],
    capacity: float,
) -> bool:
    """Check Σ_n R_n(v) <= C for all v (Section 2.3's capacity notion).

    ``tagged_packets[n]`` lists flow n's packets as ``(start_tag,
    finish_tag, rate)``; R_n(v) is the rate of the packet whose tag span
    covers v. Checked exactly at all start-tag breakpoints.
    """
    events: List[Tuple[float, float]] = []  # (virtual time, rate delta)
    for packets in tagged_packets:
        for start, finish, rate in packets:
            if finish <= start:
                raise ValueError("finish tag must exceed start tag")
            events.append((start, rate))
            events.append((finish, -rate))
    events.sort()
    total = 0.0
    i = 0
    while i < len(events):
        v = events[i][0]
        while i < len(events) and events[i][0] == v:
            total += events[i][1]
            i += 1
        if total > capacity * (1 + 1e-9):
            return False
    return True


def delay_edd_schedulable(
    flows: Sequence[Tuple[float, float, float]],
    capacity: float,
    horizon: float | None = None,
) -> bool:
    """Theorem 7's schedulability condition (eq. 67).

    ``flows`` holds ``(rate, packet_length, deadline)`` triples. The
    condition is

    .. math::

       \\forall t > 0: \\sum_n \\max\\left(0,
       \\left\\lceil \\frac{(t - d_n) r_n}{l_n} \\right\\rceil
       \\frac{l_n}{C}\\right) \\le t

    The left side is piecewise constant, jumping only at
    :math:`t = d_n + k\\, l_n / r_n`; it suffices to check just after
    each jump, up to a horizon where the average slope proves the rest.
    """
    for rate, length, deadline in flows:
        if rate <= 0 or length <= 0 or deadline <= 0:
            raise ValueError("rates, lengths, deadlines must be positive")
    total_rate = sum(r for r, _l, _d in flows)
    if total_rate > capacity:
        return False  # the slope alone eventually violates the condition
    if horizon is None:
        # Beyond max deadline + the worst transient, slope <= 1 keeps the
        # inequality; a safe horizon is where the linearized demand with
        # the +1 ceiling slack crosses t.
        slack = sum(l / capacity for _r, l, _d in flows)
        max_d = max(d for _r, _l, d in flows)
        denom = 1 - total_rate / capacity
        horizon = max_d + (slack / denom if denom > 0 else slack + max_d * 10)

    breakpoints: List[float] = []
    for rate, length, deadline in flows:
        step = length / rate
        t = deadline
        while t <= horizon:
            breakpoints.append(t)
            t += step
    for t in sorted(set(breakpoints)):
        t_eps = t + 1e-12
        demand = 0.0
        for rate, length, deadline in flows:
            if t_eps > deadline:
                quanta = math.ceil((t_eps - deadline) * rate / length)
                demand += quanta * length / capacity
        if demand > t_eps + 1e-9:
            return False
    return True
