"""Statistics helpers for experiment reporting."""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.simulation.tracing import Tracer


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def windowed_throughput(
    tracer: Tracer, flow: Hashable, window: float, horizon: float
) -> List[Tuple[float, float]]:
    """Bit rate of ``flow`` per window: [(window_end, bits/s), ...].

    Figure 3(b)-style series: attribute each departed packet to the
    window containing its departure.
    """
    if window <= 0 or horizon <= 0:
        raise ValueError("window and horizon must be positive")
    n_windows = int(math.ceil(horizon / window))
    bits = [0] * n_windows
    for record in tracer.iter_departed(flow):
        idx = int(record.departure / window)
        if idx < n_windows:
            bits[idx] += record.length
    return [((i + 1) * window, b / window) for i, b in enumerate(bits)]


def delay_summary(tracer: Tracer, flow: Hashable) -> Dict[str, float]:
    """Mean / p99 / max delay of a flow at one server."""
    delays = tracer.delays(flow)
    if not delays:
        return {"count": 0, "mean": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "count": len(delays),
        "mean": mean(delays),
        "p99": percentile(delays, 99),
        "max": max(delays),
    }
