"""Full-evaluation report generation.

``generate_report`` runs a selected set (default: all) of the paper's
experiments and writes one self-contained Markdown document with every
table, note and ASCII chart — the programmatic equivalent of running
the benchmark suite and stitching ``results/`` together. Exposed on the
CLI as ``python -m repro report``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from repro.experiments.harness import ExperimentResult

#: Experiments in presentation order (CLI names from repro.cli).
DEFAULT_ORDER = [
    "table1",
    "example1",
    "example2",
    "figure1",
    "figure2a",
    "figure2b",
    "figure3",
    "throughput",
    "delay",
    "ebf",
    "e2e",
    "interop",
    "linkshare",
    "shifting",
    "edd",
    "residual",
    "vbr",
    "fa",
    "stress",
    "faults",
    "robust-figure1",
    "robust-figure2b",
    "complexity",
]


def _to_markdown(result: ExperimentResult) -> str:
    lines: List[str] = [f"## {result.experiment}", "", result.description, ""]
    lines.append("| " + " | ".join(result.headers) + " |")
    lines.append("|" + "|".join("---" for _ in result.headers) + "|")
    for row in result.rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    if result.notes:
        lines.append("")
        for note in result.notes:
            lines.append(f"> {note}")
    charts = result.data.get("charts")
    if charts:
        for chart in charts:
            lines.append("")
            lines.append("```")
            lines.append(chart)
            lines.append("```")
    lines.append("")
    return "\n".join(lines)


def generate_report(
    path: Optional[str] = None,
    experiments: Optional[Iterable[str]] = None,
    seed: Optional[int] = None,
) -> Tuple[str, List[str]]:
    """Run experiments and render the Markdown report.

    Returns ``(markdown, failures)``; the report is also written to
    ``path`` when given. An experiment that raises is recorded in
    ``failures`` and the report continues — a partial report beats no
    report when iterating.
    """
    from repro.cli import run_experiment

    names = list(experiments) if experiments is not None else list(DEFAULT_ORDER)
    sections: List[str] = [
        "# SFQ reproduction — full evaluation report",
        "",
        "Start-time Fair Queuing (Goyal, Vin & Cheng, SIGCOMM 1996): "
        "every table and figure, regenerated.",
        "",
    ]
    failures: List[str] = []
    for name in names:
        start = time.perf_counter()
        try:
            result = run_experiment(name, seed=seed)
        except Exception as exc:  # noqa: BLE001 - reported, not hidden
            failures.append(f"{name}: {exc!r}")
            sections.append(f"## {name}\n\n*FAILED: {exc!r}*\n")
            continue
        elapsed = time.perf_counter() - start
        sections.append(_to_markdown(result))
        sections.append(f"*({elapsed:.2f}s simulated-experiment wall time)*\n")
    markdown = "\n".join(sections)
    if path is not None:
        Path(path).write_text(markdown)
    return markdown, failures
