"""Full-evaluation report generation.

``generate_report`` runs a selected set (default: all) of the paper's
experiments and writes one self-contained Markdown document with every
table, note and ASCII chart — the programmatic equivalent of running
the benchmark suite and stitching ``results/`` together. Exposed on the
CLI as ``python -m repro report``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from repro.experiments.harness import ExperimentResult

#: Experiments in presentation order (CLI names from repro.cli).
DEFAULT_ORDER = [
    "table1",
    "example1",
    "example2",
    "figure1",
    "figure2a",
    "figure2b",
    "figure3",
    "throughput",
    "delay",
    "ebf",
    "e2e",
    "interop",
    "linkshare",
    "shifting",
    "edd",
    "residual",
    "vbr",
    "fa",
    "stress",
    "faults",
    "robust-figure1",
    "robust-figure2b",
    "complexity",
]


def _to_markdown(result: ExperimentResult) -> str:
    lines: List[str] = [f"## {result.experiment}", "", result.description, ""]
    lines.append("| " + " | ".join(result.headers) + " |")
    lines.append("|" + "|".join("---" for _ in result.headers) + "|")
    for row in result.rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    if result.notes:
        lines.append("")
        for note in result.notes:
            lines.append(f"> {note}")
    charts = result.data.get("charts")
    if charts:
        for chart in charts:
            lines.append("")
            lines.append("```")
            lines.append(chart)
            lines.append("```")
    lines.append("")
    return "\n".join(lines)


def campaign_to_markdown(campaign: "CampaignResult") -> str:  # noqa: F821
    """Render a campaign's aggregated summaries as one Markdown doc.

    Written by ``python -m repro campaign`` to
    ``<results>/campaign_summary.md``. Shard-level provenance (cache
    hits, retries, failures) lives in the manifest next to it; this
    document is the human-readable evaluation: one summary table per
    experiment, mean over seed slots, with failed shards called out.
    """
    stats = campaign.stats
    lines: List[str] = [
        "# Campaign summary",
        "",
        f"{stats['shards']} shards ({stats['ok']} ok, {stats['failed']} "
        f"failed), {stats['cached']} served from cache, "
        f"{stats['seeds']} seed slot(s), --jobs {stats['jobs']}, "
        f"{campaign.wall_s:.2f}s wall.",
        "",
    ]
    for summary in campaign.summaries.values():
        lines.append(_to_markdown(summary))
    failures = campaign.failures
    if failures:
        lines.append("## Failed shards")
        lines.append("")
        for outcome in failures:
            first_line = outcome.error.splitlines()[0] if outcome.error else ""
            lines.append(
                f"- `{outcome.shard.describe()}` — {outcome.status}"
                + (f": {first_line}" if first_line else "")
            )
        lines.append("")
    return "\n".join(lines)


def _bench_section(root: Optional[Path] = None) -> Optional[str]:
    """Render the measured O(log F) vs O(log N) scaling curve from the
    committed ``BENCH_*.json`` (written by ``python -m repro bench``).

    Returns None when the bench artifacts are absent (fresh checkout
    before a bench run) — the report simply omits the section.
    """
    import json

    if root is None:
        root = Path(__file__).resolve().parents[3]
    sched_path = root / "BENCH_schedulers.json"
    engine_path = root / "BENCH_engine.json"
    if not sched_path.exists():
        return None
    sched = json.loads(sched_path.read_text())
    if sched.get("mode") == "smoke":
        return None
    lines: List[str] = [
        "## Scheduling cost: measured O(log F) vs O(log N)",
        "",
        "The paper's §2.5 complexity claim, measured on wall clock: "
        "per-packet cost of the flow-head-heap core (one heap entry per "
        f"backlogged flow, F={sched['flows']} flows fixed) stays flat as "
        "per-flow backlog deepens, while the seed's global packet heap "
        "pays O(log N) in total queued packets on every operation. "
        "Min-of-repeats `perf_counter` timings of a steady-state "
        "dequeue+complete+enqueue cycle; machine-dependent, compare "
        "shapes not nanoseconds. Regenerate with `python -m repro bench`.",
        "",
        "| packets/flow | total packets N | seed ns/pkt (packet heap) | optimized ns/pkt (flow-head heap) |",
        "|---|---|---|---|",
    ]
    for point in sched["sfq_backlog_curve"]:
        lines.append(
            f"| {point['per_flow_backlog']} | {point['total_packets']} "
            f"| {point['seed_ns_per_packet']} "
            f"| {point['optimized_ns_per_packet']} |"
        )
    if engine_path.exists():
        engine = json.loads(engine_path.read_text())
        if engine.get("mode") != "smoke":
            d4096 = engine["dispatch"]["pending=4096"]
            pipe = engine["pipeline"]
            lines += [
                "",
                f"> engine fast loop: {d4096['speedup']}× cheaper dispatch at "
                f"4096 pending events "
                f"({d4096['seed_ns_per_event']} → "
                f"{d4096['optimized_ns_per_event']} ns/event); end-to-end "
                f"SFQ pipeline {pipe['speedup']}× packets/wall-second with "
                "tracing disabled "
                f"({pipe['seed_pkts_per_sec']} → "
                f"{pipe['optimized_pkts_per_sec']} pkts/s)",
            ]
    lines.append("")
    return "\n".join(lines)


def generate_report(
    path: Optional[str] = None,
    experiments: Optional[Iterable[str]] = None,
    seed: Optional[int] = None,
) -> Tuple[str, List[str]]:
    """Run experiments and render the Markdown report.

    Returns ``(markdown, failures)``; the report is also written to
    ``path`` when given. An experiment that raises is recorded in
    ``failures`` and the report continues — a partial report beats no
    report when iterating.
    """
    from repro.cli import run_experiment

    names = list(experiments) if experiments is not None else list(DEFAULT_ORDER)
    sections: List[str] = [
        "# SFQ reproduction — full evaluation report",
        "",
        "Start-time Fair Queuing (Goyal, Vin & Cheng, SIGCOMM 1996): "
        "every table and figure, regenerated.",
        "",
    ]
    failures: List[str] = []
    for name in names:
        start = time.perf_counter()  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
        try:
            result = run_experiment(name, seed=seed)
        except Exception as exc:  # noqa: BLE001 - reported, not hidden
            failures.append(f"{name}: {exc!r}")
            sections.append(f"## {name}\n\n*FAILED: {exc!r}*\n")
            continue
        elapsed = time.perf_counter() - start  # lint: disable=DET002  harness wall-clock bookkeeping, not simulation state
        sections.append(_to_markdown(result))
        sections.append(f"*({elapsed:.2f}s simulated-experiment wall time)*\n")
    bench = _bench_section()
    if bench is not None:
        sections.append(bench)
    markdown = "\n".join(sections)
    if path is not None:
        Path(path).write_text(markdown)
    return markdown, failures
