"""Empirical characterization of capacity processes.

Given any :class:`repro.servers.base.CapacityProcess`, these helpers
*measure* the FC burstiness δ(C) (Definition 1) and sample the EBF
deficit tail (Definition 2), so experiments can use honest, certified
parameters in the theorem bounds instead of trusting constructor
arguments.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.servers.base import CapacityProcess


def measure_fc_delta(
    capacity: CapacityProcess,
    guarantee_rate: float,
    horizon: float,
    step: float,
) -> float:
    """Empirical δ: max over sampled intervals of C·(t2-t1) - W(t1,t2).

    Uses the running-minimum identity: with D(t) = C·t - W(0,t), the
    worst interval deficit is max_t [D(t) - min_{s<=t} D(s)], computable
    in one pass over a time grid.
    """
    if step <= 0 or horizon <= 0:
        raise ValueError("step and horizon must be positive")
    delta = 0.0
    deficit = 0.0
    min_deficit = 0.0
    t = 0.0
    while t < horizon:
        t_next = min(t + step, horizon)
        work = capacity.work(t, t_next)
        deficit += guarantee_rate * (t_next - t) - work
        min_deficit = min(min_deficit, deficit)
        delta = max(delta, deficit - min_deficit)
        t = t_next
    return delta


def sample_ebf_deficits(
    capacity: CapacityProcess,
    guarantee_rate: float,
    delta: float,
    horizon: float,
    n_samples: int,
    rng: Optional[random.Random] = None,
    min_window: float = 0.0,
) -> List[float]:
    """Sample interval deficits beyond δ for EBF envelope fitting.

    Draws random intervals [t1, t2] in [0, horizon] and returns
    ``max(0, C·(t2-t1) - W(t1,t2) - delta)`` for each — the γ exceedances
    whose tail Definition 2 bounds by ``B e^{-αγ}``.
    """
    rng = rng if rng is not None else random.Random(0)
    samples: List[float] = []
    for _ in range(n_samples):
        t1 = rng.uniform(0, horizon)
        t2 = rng.uniform(t1 + min_window, horizon) if t1 + min_window < horizon else horizon
        if t2 <= t1:
            continue
        deficit = guarantee_rate * (t2 - t1) - capacity.work(t1, t2) - delta
        samples.append(max(0.0, deficit))
    return samples
