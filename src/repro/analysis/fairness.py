"""Fairness measurement and analytic fairness bounds.

The paper's fairness criterion (Section 1.2): a packet scheduler is fair
with measure H(f, m) if for *all* intervals :math:`[t_1, t_2]` in which
both flows are backlogged,

.. math:: \\left| \\frac{W_f(t_1,t_2)}{r_f} - \\frac{W_m(t_1,t_2)}{r_m} \\right| \\le H(f, m)

where a packet counts toward :math:`W(t_1,t_2)` iff it starts *and*
finishes service inside the interval. Golestani's lower bound is
:math:`H \\ge \\frac{1}{2}(l_f^{max}/r_f + l_m^{max}/r_m)`.

:func:`empirical_fairness_measure` computes the exact maximum of the
normalized service gap over all interval endpoints drawn from the
observed service epochs, restricted to spans where both flows were
continuously backlogged — i.e. the tightest empirical H(f, m) a trace
supports.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from repro.simulation.tracing import PacketRecord, Tracer


# ----------------------------------------------------------------------
# Analytic bounds (paper Table 1)
# ----------------------------------------------------------------------
def golestani_lower_bound(lf_max: float, rf: float, lm_max: float, rm: float) -> float:
    """The universal lower bound on H(f, m) for packet schedulers."""
    return 0.5 * (lf_max / rf + lm_max / rm)


def sfq_fairness_bound(lf_max: float, rf: float, lm_max: float, rm: float) -> float:
    """Theorem 1: SFQ's H(f, m) — also SCFQ's (Golestani 1994)."""
    return lf_max / rf + lm_max / rm


scfq_fairness_bound = sfq_fairness_bound


def wfq_fairness_lower_bound(lf_max: float, rf: float, lm_max: float, rm: float) -> float:
    """Example 1: WFQ's H(f, m) is *at least* this (≥ 2x the lower bound)."""
    return lf_max / rf + lm_max / rm


def drr_fairness_bound(lf_max: float, rf: float, lm_max: float, rm: float) -> float:
    """DRR's H(f, m) with weights normalized so min weight = 1.

    The "+1" term is in normalized-service units and grows relative to
    the other terms as weights scale up — the unboundedness the paper's
    Section 1.2 example (r=100, l=1 → 50x worse than SCFQ) illustrates.
    """
    return 1.0 + lf_max / rf + lm_max / rm


# ----------------------------------------------------------------------
# Empirical measurement
# ----------------------------------------------------------------------
def backlogged_intervals(records: Sequence[PacketRecord]) -> List[Tuple[float, float]]:
    """Merge [arrival, departure] spans into maximal backlogged intervals."""
    spans = [
        (r.arrival, r.departure)
        for r in records
        if r.departure is not None and not r.dropped
    ]
    spans.sort()
    merged: List[Tuple[float, float]] = []
    for start, end in spans:
        if merged and start <= merged[-1][1] + 1e-12:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _intersect(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    out: List[Tuple[float, float]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            out.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def normalized_service_gap(
    tracer: Tracer,
    flow_f: Hashable,
    flow_m: Hashable,
    rf: float,
    rm: float,
    t1: float,
    t2: float,
) -> float:
    """|W_f(t1,t2)/r_f - W_m(t1,t2)/r_m| for one interval."""
    wf = tracer.work_in_interval(flow_f, t1, t2)
    wm = tracer.work_in_interval(flow_m, t1, t2)
    return abs(wf / rf - wm / rm)


def empirical_fairness_measure(
    tracer: Tracer,
    flow_f: Hashable,
    flow_m: Hashable,
    rf: float,
    rm: float,
    max_epochs: Optional[int] = 2000,
    return_interval: bool = False,
):
    """Max normalized service gap over all common-backlog intervals.

    Exact over the epoch grid (service start/departure instants): the
    gap function changes value only at those instants, so checking all
    epoch pairs inside every common-backlog span yields the true
    maximum. ``max_epochs`` caps quadratic blowup on huge traces by
    evaluating each span on an evenly subsampled epoch grid.

    With ``return_interval=True`` returns ``(H, (t1, t2))`` — the
    interval realizing the worst gap (``(0.0, 0.0)`` if none) — which is
    invaluable when debugging a fairness-bound violation.
    """
    recs_f = [r for r in tracer.iter_for_flow(flow_f) if r.departure is not None]
    recs_m = [r for r in tracer.iter_for_flow(flow_m) if r.departure is not None]
    if not recs_f or not recs_m:
        return (0.0, (0.0, 0.0)) if return_interval else 0.0
    common = _intersect(backlogged_intervals(recs_f), backlogged_intervals(recs_m))
    worst = 0.0
    worst_span = (0.0, 0.0)
    for lo, hi in common:
        gap, span = _max_gap_in_span(recs_f, recs_m, rf, rm, lo, hi, max_epochs)
        if gap > worst:
            worst, worst_span = gap, span
    return (worst, worst_span) if return_interval else worst


def _max_gap_in_span(
    recs_f: Sequence[PacketRecord],
    recs_m: Sequence[PacketRecord],
    rf: float,
    rm: float,
    lo: float,
    hi: float,
    max_epochs: Optional[int],
) -> Tuple[float, Tuple[float, float]]:
    # Packets entirely inside [lo, hi], as (start, departure, signed work).
    eps = 1e-12
    items: List[Tuple[float, float, float]] = []
    epochs: List[float] = [lo, hi]
    for r in recs_f:
        if r.start_service is not None and r.start_service >= lo - eps and r.departure <= hi + eps:
            items.append((r.start_service, r.departure, r.length / rf))
            epochs.extend((r.start_service, r.departure))
    for r in recs_m:
        if r.start_service is not None and r.start_service >= lo - eps and r.departure <= hi + eps:
            items.append((r.start_service, r.departure, -r.length / rm))
            epochs.extend((r.start_service, r.departure))
    if not items:
        return 0.0, (lo, hi)
    epochs = sorted(set(epochs))
    if max_epochs is not None and len(epochs) > max_epochs:
        stride = len(epochs) / max_epochs
        epochs = [epochs[int(i * stride)] for i in range(max_epochs)] + [epochs[-1]]
    items.sort(key=lambda it: it[1])  # by departure
    worst = 0.0
    worst_span = (lo, hi)
    for t1 in epochs:
        # Walk t2 upward, accumulating packets fully inside [t1, t2].
        acc = 0.0
        idx = 0
        for t2 in epochs:
            if t2 <= t1:
                continue
            while idx < len(items) and items[idx][1] <= t2 + eps:
                start, _dep, value = items[idx]
                if start >= t1 - eps:
                    acc += value
                idx += 1
            if abs(acc) > worst:
                worst = abs(acc)
                worst_span = (t1, t2)
    return worst, worst_span


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 means perfectly equal."""
    if not allocations:
        return 1.0
    total = sum(allocations)
    squares = sum(x * x for x in allocations)
    if squares == 0:
        return 1.0
    return total * total / (len(allocations) * squares)
